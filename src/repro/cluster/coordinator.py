"""The cluster coordinator: shard routing, flow control, recovery.

:class:`ClusterCoordinator` owns the deployment: it listens on an
ephemeral loopback port, spawns ``workers`` processes running
:func:`~repro.cluster.worker.worker_main` (``fork`` start method when
the platform has it, ``spawn`` otherwise), handshakes each one, and
assigns every watched pattern shard to exactly one worker with the
stable CRC-32 policy of :func:`~repro.engine.dispatch.shard_worker` —
the same policy family the in-process
:class:`~repro.engine.dispatch.ShardedDispatcher` represents with one
execution unit.  Because shards (not traces) are partitioned, **every
worker receives the full broadcast linearization** — causal patterns
match across traces, so a shard cannot see a trace-sliced stream —
and the deployment's match output is bit-identical to the in-process
sharded run by construction.

Flow control is credit-based: at most ``credits`` unacknowledged EVENTS
frames are in flight per worker; each processed batch comes back as a
CREDIT frame (doubling as a heartbeat with live counters).  A slow
worker therefore throttles the coordinator instead of growing an
unbounded socket queue — the cluster-shaped analogue of the in-process
back-pressure stages.

Recovery reuses the ``ocep-sharded-checkpoint-v1`` machinery end to
end.  :meth:`ClusterCoordinator.checkpoint` quiesces the stream (drains
all credits), collects each worker's shard-slice snapshot, and merges
them into one standard v1 document — readable by
:meth:`~repro.engine.Pipeline.restore` and by any future layout
(elastic re-sharding: each worker of the new layout restores only its
slice, ``partial=True``).  When a worker dies — crash, kill, or wire
error — the coordinator respawns it, replays the CONFIG handshake,
sends the last merged checkpoint as RESTORE, and re-broadcasts the
already-sent stream prefix: restored monitors fast-forward through the
deliveries their checkpoint already covers
(:meth:`~repro.core.monitor.Monitor.restore` arms suffix-skipping), so
matcher work is O(suffix) even though transport is O(stream), and the
recovered deployment converges to the uninterrupted run's exact output.

:class:`ClusterPipeline` wraps the coordinator in the fluent
single-process :class:`~repro.engine.Pipeline` surface (``watch`` /
``restore`` / ``run``) — it is what
:meth:`Pipeline.distributed() <repro.engine.Pipeline.distributed>`
returns.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import socket
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.metrics import import_worker_snapshot
from repro.cluster.transport import (
    ClusterProtocolError,
    FrameConnection,
)
from repro.cluster.wire import (
    PROTOCOL_VERSION,
    FrameType,
    decode_json,
    encode_event_batch,
    report_from_record,
    signature_from_record,
    stats_from_record,
)
from repro.cluster.worker import worker_main
from repro.core.matcher import MatchReport
from repro.core.monitor import MonitorStats
from repro.engine.dispatch import CHECKPOINT_FORMAT, worker_shards
from repro.events.event import Event
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry

#: Unacknowledged EVENTS frames allowed in flight per worker.
DEFAULT_CREDITS = 4

#: Events per EVENTS frame when a drive loop chooses the slicing.
DEFAULT_CLUSTER_BATCH_SIZE = 512

#: Socket timeout for coordinator-side reads (a worker must ack a
#: batch, answer a checkpoint, or deliver its result within this).
DEFAULT_TIMEOUT = 120.0

#: Respawn attempts per worker before the deployment gives up.
DEFAULT_MAX_RESTARTS = 3


class ClusterError(RuntimeError):
    """The deployment cannot make progress (worker unrecoverable,
    restart budget exhausted, handshake failure)."""


@dataclasses.dataclass
class ShardOutcome:
    """Final state of one pattern shard, decoded from its worker's
    RESULT frame.  ``reports`` events are rebuilt from their wire
    records; event identity is ``(trace, index)``, so these compare
    equal to the in-process run's reports."""

    name: str
    worker: int
    reports: List[MatchReport]
    stats: MonitorStats
    signature: tuple
    timings: dict


@dataclasses.dataclass
class ClusterResult:
    """Outcome of one cluster drive — the result surface the
    equivalence tooling shares with
    :class:`~repro.engine.pipeline.PipelineResult`."""

    num_events: int
    shards: Dict[str, ShardOutcome]
    workers: int
    restarts: int
    registry: Optional[MetricsRegistry]
    #: ``worker index -> scrape URL`` when worker observability is on.
    obs_urls: Dict[int, str]
    #: Merged final checkpoint (collected pre-FINISH) — ``None`` unless
    #: the drive requested checkpoints.
    final_checkpoint: Optional[dict] = None

    def __getitem__(self, name: str) -> ShardOutcome:
        return self.shards[name]

    def reports(self, name: str) -> List[MatchReport]:
        return self.shards[name].reports

    def stats(self) -> Dict[str, MonitorStats]:
        return {name: shard.stats for name, shard in self.shards.items()}

    def signatures(self) -> Dict[str, tuple]:
        return {name: shard.signature for name, shard in self.shards.items()}

    def total_reports(self) -> int:
        return sum(len(shard.reports) for shard in self.shards.values())


class WorkerHandle:
    """Coordinator-side state of one worker process."""

    def __init__(self, index: int, shards: List[str]):
        self.index = index
        self.shards = shards
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.conn: Optional[FrameConnection] = None
        self.pid: Optional[int] = None
        self.obs_url: Optional[str] = None
        #: Unacknowledged EVENTS frames in flight.
        self.outstanding = 0
        #: Latest counters from CREDIT/HEARTBEAT frames.
        self.events_seen = 0
        self.reports = 0
        self.restarts = 0

    def alive(self) -> bool:
        return (
            self.process is not None
            and self.conn is not None
            and self.process.is_alive()
        )


class ClusterCoordinator:
    """Owns the worker fleet and the recorded stream being broadcast.

    Drive order: :meth:`watch` the shards, optionally :meth:`restore`
    a checkpoint, :meth:`start`, any number of :meth:`send_batch`
    (with :meth:`checkpoint` / :meth:`kill_worker` interleaved), then
    :meth:`finish`.  :class:`ClusterPipeline` packages that order for
    the common replay-everything case.
    """

    def __init__(
        self,
        events: Sequence[Event],
        trace_names: Sequence[str],
        workers: int = 2,
        clock_backend: str = "fidge",
        credits: int = DEFAULT_CREDITS,
        registry: Optional[MetricsRegistry] = None,
        worker_obs: bool = False,
        worker_metrics: bool = True,
        timeout: float = DEFAULT_TIMEOUT,
        start_method: Optional[str] = None,
        max_restarts: int = DEFAULT_MAX_RESTARTS,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if credits < 1:
            raise ValueError(f"credits must be >= 1, got {credits}")
        self.events = list(events)
        self.trace_names = tuple(trace_names)
        self.num_workers = workers
        self.clock_backend = clock_backend
        self.credits = credits
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.worker_obs = worker_obs
        self.worker_metrics = worker_metrics
        self.timeout = timeout
        self.start_method = start_method
        self.max_restarts = max_restarts

        self._shards: Dict[str, str] = {}
        self._restore_document: Optional[dict] = None
        self._handles: List[WorkerHandle] = []
        self._listener: Optional[socket.socket] = None
        self._ctx: Optional[multiprocessing.context.BaseContext] = None
        self._started = False
        self._finished = False
        #: Events broadcast so far (prefix length of :attr:`events`).
        self.offset = 0
        #: Last merged checkpoint: ``(offset, document)``.
        self._checkpoint: Optional[Tuple[int, dict]] = None

        self._events_sent = self.registry.counter(
            "ocep_cluster_events_sent_total",
            "events broadcast to workers (events x workers)",
        )
        self._batches_sent = self.registry.counter(
            "ocep_cluster_batches_sent_total",
            "EVENTS frames sent to workers",
        )
        self._restarts_counter = self.registry.counter(
            "ocep_cluster_worker_restarts_total",
            "worker processes respawned after a crash",
        )
        self._workers_gauge = self.registry.gauge(
            "ocep_cluster_workers", "worker processes in the deployment"
        )
        self._checkpoints_counter = self.registry.counter(
            "ocep_cluster_checkpoints_total",
            "whole-deployment checkpoints collected",
        )

    # ------------------------------------------------------------------
    # Configuration (pre-start)
    # ------------------------------------------------------------------

    def watch(self, name: str, pattern_source: str) -> "ClusterCoordinator":
        """Add a pattern shard (routed to its worker at :meth:`start`)."""
        if self._started:
            raise RuntimeError("cannot watch() after start(): the shard "
                               "would have missed the stream prefix")
        if name in self._shards:
            raise ValueError(f"shard {name!r} already watched")
        self._shards[name] = pattern_source
        return self

    def restore(self, state: dict) -> "ClusterCoordinator":
        """Start every worker from this ``ocep-sharded-checkpoint-v1``
        document (each restores only its slice — the document may come
        from any shard layout, including a single-process run)."""
        if self._started:
            raise RuntimeError("restore() must precede start()")
        if state.get("format") != CHECKPOINT_FORMAT:
            raise ValueError(
                f"not a {CHECKPOINT_FORMAT} document: "
                f"format={state.get('format')!r}"
            )
        self._restore_document = state
        self._checkpoint = (0, state)
        return self

    # ------------------------------------------------------------------
    # Deployment lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ClusterCoordinator":
        """Bind, spawn the fleet, handshake every worker."""
        if self._started:
            raise RuntimeError("cluster already started")
        if not self._shards:
            raise RuntimeError("start() needs at least one watched shard")
        self._started = True

        methods = multiprocessing.get_all_start_methods()
        method = self.start_method
        if method is None:
            method = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(method)

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(self.num_workers)
        self._listener.settimeout(self.timeout)

        assignment = worker_shards(list(self._shards), self.num_workers)
        self._handles = [
            WorkerHandle(index, shard_names)
            for index, shard_names in enumerate(assignment)
        ]
        for handle in self._handles:
            self._spawn(handle)
        # Workers connect in arbitrary order; route each accepted
        # connection to its handle by the HELLO identity.
        pending = {handle.index: handle for handle in self._handles}
        while pending:
            conn = self._accept()
            hello = conn.recv_json(expect=FrameType.HELLO)
            if hello.get("version") != PROTOCOL_VERSION:
                raise ClusterError(
                    f"worker speaks protocol {hello.get('version')}, "
                    f"coordinator speaks {PROTOCOL_VERSION}"
                )
            handle = pending.pop(hello["worker"])
            handle.conn = conn
            handle.pid = hello.get("pid")
        for handle in self._handles:
            self._configure(handle)
        self._workers_gauge.set(len(self._handles))
        return self

    def _accept(self) -> FrameConnection:
        assert self._listener is not None
        try:
            sock, _addr = self._listener.accept()
        except socket.timeout as exc:
            raise ClusterError(
                "no worker connected within the timeout"
            ) from exc
        sock.settimeout(self.timeout)
        return FrameConnection(sock)

    def _spawn(self, handle: WorkerHandle) -> None:
        assert self._ctx is not None and self._listener is not None
        _host, port = self._listener.getsockname()
        process = self._ctx.Process(
            target=worker_main,
            args=(handle.index, "127.0.0.1", port),
            name=f"ocep-cluster-worker-{handle.index}",
            daemon=True,
        )
        process.start()
        handle.process = process
        handle.outstanding = 0
        handle.events_seen = 0

    def _configure(self, handle: WorkerHandle) -> None:
        """CONFIG -> READY (-> RESTORE) for one connected worker."""
        assert handle.conn is not None
        handle.conn.send_json(
            FrameType.CONFIG,
            {
                "version": PROTOCOL_VERSION,
                "trace_names": list(self.trace_names),
                "shards": {
                    name: self._shards[name] for name in handle.shards
                },
                "clock_backend": self.clock_backend,
                "metrics": self.worker_metrics,
                "obs": self.worker_obs,
            },
        )
        ready = handle.conn.recv_json(expect=FrameType.READY)
        handle.obs_url = ready.get("obs_url")
        if self._checkpoint is not None:
            handle.conn.send_json(FrameType.RESTORE, self._checkpoint[1])

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------

    def send_batch(self, events: Sequence[Event]) -> None:
        """Broadcast the next contiguous slice of :attr:`events` to the
        whole fleet (the slice must start at :attr:`offset`)."""
        if not self._started or self._finished:
            raise RuntimeError("cluster is not streaming")
        if not events:
            return
        payload = encode_event_batch(events)
        for handle in self._handles:
            self._send_events(handle, payload)
        self.offset += len(events)
        self._batches_sent.inc()
        self._events_sent.inc(len(events) * len(self._handles))

    def _send_events(self, handle: WorkerHandle, payload: bytes) -> None:
        for _attempt in range(self.max_restarts + 1):
            try:
                if handle.process is not None and not handle.process.is_alive():
                    raise ClusterProtocolError(
                        f"worker {handle.index} process died "
                        f"(exitcode {handle.process.exitcode})"
                    )
                while handle.outstanding >= self.credits:
                    self._pump(handle)
                if handle.conn is None:
                    raise ClusterProtocolError(
                        f"worker {handle.index} has no connection"
                    )
                handle.conn.send(FrameType.EVENTS, payload)
                handle.outstanding += 1
                return
            except (OSError, ClusterProtocolError):
                self._recover(handle)
        raise ClusterError(
            f"worker {handle.index} keeps failing; restart budget "
            f"({self.max_restarts}) exhausted"
        )

    def _pump(self, handle: WorkerHandle):
        """Receive one frame from ``handle``; CREDIT/HEARTBEAT are
        absorbed (returning ``None``), anything else is returned for
        the caller to interpret."""
        if handle.conn is None:
            raise ClusterProtocolError(
                f"worker {handle.index} has no connection"
            )
        ftype, payload = handle.conn.recv()
        if ftype is FrameType.CREDIT:
            handle.outstanding -= 1
            document = decode_json(payload)
            handle.events_seen = document.get("events_seen",
                                              handle.events_seen)
            handle.reports = document.get("reports", handle.reports)
            return None
        if ftype is FrameType.HEARTBEAT:
            document = decode_json(payload)
            handle.events_seen = document.get("events_seen",
                                              handle.events_seen)
            handle.reports = document.get("reports", handle.reports)
            return None
        return ftype, payload

    def _drain(self, handle: WorkerHandle) -> None:
        """Block until every in-flight batch is acknowledged — after
        this the worker has *processed* exactly :attr:`offset` events."""
        while handle.outstanding > 0:
            extra = self._pump(handle)
            if extra is not None:
                raise ClusterProtocolError(
                    f"unexpected {extra[0].name} frame while draining"
                )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def checkpoint(self) -> dict:
        """Quiesce the stream and merge every worker's shard slice into
        one ``ocep-sharded-checkpoint-v1`` document (also retained for
        crash recovery)."""
        if not self._started or self._finished:
            raise RuntimeError("cluster is not streaming")
        merged_shards: Dict[str, dict] = {}
        for handle in self._handles:
            for _attempt in range(self.max_restarts + 1):
                try:
                    self._drain(handle)
                    if handle.conn is None:
                        raise ClusterProtocolError(
                            f"worker {handle.index} has no connection"
                        )
                    handle.conn.send_json(FrameType.CHECKPOINT, {})
                    while True:
                        extra = self._pump(handle)
                        if extra is None:
                            continue
                        ftype, payload = extra
                        if ftype is not FrameType.CHECKPOINT_STATE:
                            raise ClusterProtocolError(
                                f"expected CHECKPOINT_STATE, got {ftype.name}"
                            )
                        document = decode_json(payload)
                        break
                    if document["offset"] != self.offset:
                        raise ClusterProtocolError(
                            f"worker {handle.index} checkpointed at offset "
                            f"{document['offset']}, coordinator at "
                            f"{self.offset}"
                        )
                    merged_shards.update(document["state"].get("shards", {}))
                    break
                except (OSError, ClusterProtocolError):
                    self._recover(handle)
            else:
                raise ClusterError(
                    f"worker {handle.index} keeps failing during checkpoint"
                )
        merged = {
            "format": CHECKPOINT_FORMAT,
            "trace_names": list(self.trace_names),
            "shards": merged_shards,
        }
        self._checkpoint = (self.offset, merged)
        self._checkpoints_counter.inc()
        return merged

    # ------------------------------------------------------------------
    # Failure + recovery
    # ------------------------------------------------------------------

    def kill_worker(self, index: int) -> None:
        """SIGKILL one worker (the chaos harness's crash injection).
        Recovery is lazy: the next interaction with the worker detects
        the death and respawns it."""
        handle = self._handles[index]
        if handle.process is not None and handle.process.is_alive():
            handle.process.kill()
            handle.process.join(timeout=self.timeout)
        if handle.conn is not None:
            handle.conn.close()
            handle.conn = None

    def _recover(self, handle: WorkerHandle) -> None:
        """Respawn a dead worker and bring it back to :attr:`offset`:
        handshake, RESTORE the last merged checkpoint, re-broadcast the
        already-sent prefix (restored shards fast-forward through the
        checkpointed part)."""
        handle.restarts += 1
        self._restarts_counter.inc()
        if handle.conn is not None:
            handle.conn.close()
            handle.conn = None
        if handle.process is not None and handle.process.is_alive():
            handle.process.kill()
        if handle.process is not None:
            handle.process.join(timeout=self.timeout)
        self._spawn(handle)
        conn = self._accept()
        hello = conn.recv_json(expect=FrameType.HELLO)
        if hello.get("worker") != handle.index:
            raise ClusterError(
                f"respawned worker identified as {hello.get('worker')}, "
                f"expected {handle.index}"
            )
        handle.conn = conn
        handle.pid = hello.get("pid")
        self._configure(handle)
        # Replay the broadcast prefix.  Transport is O(stream); matcher
        # work is O(suffix past the checkpoint) thanks to restore()'s
        # suffix-skipping.  Credit flow control applies as usual.
        for start in range(0, self.offset, DEFAULT_CLUSTER_BATCH_SIZE):
            end = min(start + DEFAULT_CLUSTER_BATCH_SIZE, self.offset)
            slice_ = self.events[start:end]
            while handle.outstanding >= self.credits:
                self._pump(handle)
            conn.send(FrameType.EVENTS, encode_event_batch(slice_))
            handle.outstanding += 1

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------

    def finish(self) -> ClusterResult:
        """Close the stream: FINISH every worker, decode the RESULT
        documents, import worker metric snapshots, SHUTDOWN, reap."""
        if not self._started:
            raise RuntimeError("cluster never started")
        if self._finished:
            raise RuntimeError("cluster already finished")
        shards: Dict[str, ShardOutcome] = {}
        obs_urls: Dict[int, str] = {}
        for handle in self._handles:
            document = None
            for _attempt in range(self.max_restarts + 1):
                try:
                    self._drain(handle)
                    if handle.conn is None:
                        raise ClusterProtocolError(
                            f"worker {handle.index} has no connection"
                        )
                    handle.conn.send_json(FrameType.FINISH, {})
                    while True:
                        extra = self._pump(handle)
                        if extra is None:
                            continue
                        ftype, payload = extra
                        if ftype is not FrameType.RESULT:
                            raise ClusterProtocolError(
                                f"expected RESULT, got {ftype.name}"
                            )
                        document = decode_json(payload)
                        break
                    break
                except (OSError, ClusterProtocolError):
                    self._recover(handle)
            if document is None:
                raise ClusterError(
                    f"worker {handle.index} keeps failing during finish"
                )
            for name, shard in document["shards"].items():
                shards[name] = ShardOutcome(
                    name=name,
                    worker=handle.index,
                    reports=[
                        report_from_record(record)
                        for record in shard["reports"]
                    ],
                    stats=stats_from_record(shard["stats"]),
                    signature=signature_from_record(shard["signature"]),
                    timings=shard["timings"],
                )
            if self.registry.enabled and "metrics" in document:
                import_worker_snapshot(
                    self.registry, handle.index, document["metrics"]
                )
            if handle.obs_url:
                obs_urls[handle.index] = handle.obs_url
        self._finished = True
        for handle in self._handles:
            if handle.conn is not None:
                try:
                    handle.conn.send_json(FrameType.SHUTDOWN, {})
                except OSError:
                    pass
            if handle.process is not None:
                handle.process.join(timeout=self.timeout)
                if handle.process.is_alive():  # pragma: no cover
                    handle.process.kill()
                    handle.process.join(timeout=self.timeout)
            if handle.conn is not None:
                handle.conn.close()
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        self._workers_gauge.set(0)
        return ClusterResult(
            num_events=self.offset,
            shards=shards,
            workers=self.num_workers,
            restarts=sum(handle.restarts for handle in self._handles),
            registry=(self.registry if self.registry.enabled else None),
            obs_urls=obs_urls,
            final_checkpoint=(
                self._checkpoint[1] if self._checkpoint is not None else None
            ),
        )

    def abort(self) -> None:
        """Tear the fleet down without results (error paths)."""
        for handle in self._handles:
            if handle.conn is not None:
                handle.conn.close()
                handle.conn = None
            if handle.process is not None and handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=self.timeout)
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        self._finished = True
        self._workers_gauge.set(0)


class ClusterPipeline:
    """The fluent drive for the common case: broadcast a recorded
    stream end to end.  Mirrors the single-process
    :class:`~repro.engine.Pipeline` surface (this is what
    ``Pipeline.distributed(...)`` returns)::

        result = (
            Pipeline.distributed(events, names, workers=4)
            .watch("races", pattern_source)
            .run()
        )
    """

    def __init__(
        self,
        events: Sequence[Event],
        trace_names: Sequence[str],
        workers: int = 2,
        clock_backend: str = "fidge",
        **cluster_options,
    ):
        self.coordinator = ClusterCoordinator(
            events=events,
            trace_names=trace_names,
            workers=workers,
            clock_backend=clock_backend,
            **cluster_options,
        )
        self._ran = False

    def watch(self, name: str, pattern_source: str) -> "ClusterPipeline":
        self.coordinator.watch(name, pattern_source)
        return self

    def restore(self, state: dict) -> "ClusterPipeline":
        self.coordinator.restore(state)
        return self

    def run(
        self,
        max_events: Optional[int] = None,
        batch_size: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
        kill_worker_after: Optional[Tuple[int, int]] = None,
    ) -> ClusterResult:
        """Stream the whole recording through the fleet.

        ``checkpoint_every`` collects a merged deployment checkpoint
        every N batches; ``kill_worker_after=(index, batch)`` SIGKILLs
        one worker after the given batch number (the chaos cell —
        recovery is exercised inline and the result must still be
        bit-identical).  A cluster pipeline runs once.
        """
        if self._ran:
            raise RuntimeError("a ClusterPipeline runs once; build a "
                               "fresh one")
        self._ran = True
        coordinator = self.coordinator
        events = coordinator.events
        if max_events is not None:
            events = events[:max_events]
        size = (batch_size if batch_size is not None
                else DEFAULT_CLUSTER_BATCH_SIZE)
        if size < 1:
            raise ValueError(f"batch_size must be >= 1, got {size}")
        coordinator.start()
        try:
            batch_number = 0
            for start in range(0, len(events), size):
                coordinator.send_batch(events[start:start + size])
                batch_number += 1
                if (
                    checkpoint_every is not None
                    and batch_number % checkpoint_every == 0
                ):
                    coordinator.checkpoint()
                if (
                    kill_worker_after is not None
                    and batch_number == kill_worker_after[1]
                ):
                    coordinator.kill_worker(kill_worker_after[0])
            return coordinator.finish()
        except BaseException:
            coordinator.abort()
            raise


__all__ = [
    "ClusterCoordinator",
    "ClusterError",
    "ClusterPipeline",
    "ClusterResult",
    "DEFAULT_CLUSTER_BATCH_SIZE",
    "DEFAULT_CREDITS",
    "DEFAULT_MAX_RESTARTS",
    "DEFAULT_TIMEOUT",
    "ShardOutcome",
    "WorkerHandle",
]
