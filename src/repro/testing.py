"""Hand-construction of distributed computations for tests and docs.

The :class:`Weaver` builds event streams with correct vector clocks,
Lamport clocks, and partner links without running the simulator —
useful for unit tests that need a *specific* causal structure (e.g.
the Figure 3 scenario) and for documentation examples.

    >>> from repro.testing import Weaver
    >>> w = Weaver(num_traces=2)
    >>> a = w.local(0, "A")
    >>> s = w.send(0)
    >>> r = w.recv(1, s)
    >>> b = w.local(1, "B")
    >>> a.happens_before(b)
    True

Events are produced in a causally consistent order (each call appends
to the stream), so ``weaver.events`` can be fed directly to a monitor
or POET server.

:func:`random_computation` drives a Weaver from a seeded RNG — the
generator behind the randomized oracle-equivalence and property tests.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.clocks.encoded import make_clock_bank, validate_backend
from repro.clocks.lamport import LamportClock
from repro.events.event import Event, EventKind


class Weaver:
    """Builds a causally consistent event stream by hand.

    ``clock_backend`` selects the timestamp scheme (``"fidge"`` full
    vectors, ``"encoded"`` O(1)-per-event encoded clocks); both weave
    causally identical streams.
    """

    def __init__(self, num_traces: int, clock_backend: str = "fidge"):
        if num_traces <= 0:
            raise ValueError(f"need at least one trace, got {num_traces}")
        self.num_traces = num_traces
        self.clock_backend = validate_backend(clock_backend)
        self._clocks, self.clock_frame = make_clock_bank(
            clock_backend, num_traces
        )
        self._lamports = [LamportClock() for _ in range(num_traces)]
        self.events: List[Event] = []

    # ------------------------------------------------------------------
    # Event constructors
    # ------------------------------------------------------------------

    def local(self, trace: int, etype: str = "E", text: str = "") -> Event:
        """Append a unary event on ``trace``."""
        return self._emit(trace, etype, text, EventKind.UNARY)

    def send(self, trace: int, etype: str = "Send", text: str = "") -> Event:
        """Append a send event on ``trace`` (pair it with :meth:`recv`)."""
        return self._emit(trace, etype, text, EventKind.SEND)

    def recv(
        self,
        trace: int,
        send_event: Event,
        etype: str = "Receive",
        text: str = "",
    ) -> Event:
        """Append the receive of ``send_event`` on ``trace``."""
        if send_event.kind is not EventKind.SEND:
            raise ValueError(f"{send_event!r} is not a send event")
        return self._emit(
            trace,
            etype,
            text,
            EventKind.RECEIVE,
            partner=send_event,
        )

    def message(self, src: int, dst: int, text: str = "") -> tuple:
        """Convenience: a send on ``src`` plus its receive on ``dst``."""
        send = self.send(src, text=text)
        receive = self.recv(dst, send, text=text)
        return send, receive

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _emit(
        self,
        trace: int,
        etype: str,
        text: str,
        kind: EventKind,
        partner: Optional[Event] = None,
    ) -> Event:
        if not 0 <= trace < self.num_traces:
            raise ValueError(f"trace {trace} out of range")
        clock = self._clocks[trace]
        if partner is not None:
            clock = clock.merge(partner.clock)
            lamport = self._lamports[trace].receive(partner.lamport)
        else:
            lamport = self._lamports[trace].tick()
        clock = clock.tick(trace)
        self._clocks[trace] = clock

        event = Event(
            trace=trace,
            index=clock[trace],
            etype=etype,
            text=text,
            clock=clock,
            kind=kind,
            partner=partner.event_id if partner is not None else None,
            lamport=lamport,
        )
        self.events.append(event)
        return event


def random_computation(
    seed: int,
    num_traces: int = 3,
    steps: int = 20,
    etypes: Sequence[str] = ("A", "B", "C"),
    texts: Sequence[str] = ("",),
    local_probability: float = 0.45,
    send_probability: float = 0.30,
    clock_backend: str = "fidge",
) -> Weaver:
    """Weave a random-but-valid computation from a seed.

    Each step emits a local event of a random type, starts a message,
    or completes a previously started message on a random other trace;
    the remaining probability mass falls through to completing
    messages, so traffic drains naturally.  Deterministic per
    ``(seed, parameters)``.
    """
    if not 0 <= local_probability + send_probability <= 1:
        raise ValueError("probabilities must sum to at most 1")
    rng = random.Random(seed)
    weaver = Weaver(num_traces, clock_backend=clock_backend)
    pending: List[Event] = []
    for _ in range(steps):
        roll = rng.random()
        trace = rng.randrange(num_traces)
        if roll < local_probability or num_traces == 1:
            weaver.local(trace, rng.choice(etypes), rng.choice(texts))
        elif roll < local_probability + send_probability:
            pending.append(weaver.send(trace))
        elif pending:
            send = pending.pop(rng.randrange(len(pending)))
            choices = [t for t in range(num_traces) if t != send.trace]
            weaver.recv(rng.choice(choices), send)
    return weaver
