"""Cluster equivalence and crash-recovery cells.

The multi-process runtime's correctness contract is inherited from the
in-process one: a :mod:`repro.cluster` deployment over a recorded
stream must produce **bit-identical match output** to the single-process
:class:`~repro.engine.dispatch.ShardedDispatcher` run over the same
stream — per-shard match reports, representative-subset signatures, and
the full matcher counter set.  This module packages that check as
seeded *cells*, mirroring :mod:`repro.resilience.chaos`:

* :func:`run_cluster_cell` — record one case-study workload, run the
  four case patterns through (a) the in-process sharded pipeline and
  (b) an N-worker cluster, and diff everything.

* With ``kill=True`` the cell doubles as the crash-recovery check: a
  deployment checkpoint is collected mid-stream, the worker owning the
  case's own pattern is SIGKILLed right after, the coordinator
  respawns/restores/replays, and the *recovered* deployment must still
  converge counter-exactly (signatures and stats identical; the
  recovered shard's post-hoc ``reports`` list legitimately holds only
  post-restore matches — the same documented semantics as the
  in-process :meth:`~repro.core.monitor.Monitor.restore`, whose
  ``matches_reported`` counter, not its reports list, is the
  convergence surface).

Driven by the ``ocep cluster`` CLI subcommand and the CI
``cluster-smoke`` job.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.engine.cases import case_patterns
from repro.engine.dispatch import shard_worker
from repro.engine.pipeline import Pipeline

#: Default events per EVENTS frame in a cell run (small enough that a
#: short workload still spans several batches, so the checkpoint/kill
#: schedule has room to land mid-stream).
DEFAULT_CELL_BATCH_SIZE = 128


def pick_victim_worker(pattern_names, num_workers: int) -> int:
    """The worker a crash cell should kill: the owner of the first
    pattern that routes to a non-empty worker (killing a worker with
    no shards would exercise respawn but not state restore)."""
    for name in pattern_names:
        return shard_worker(name, num_workers)
    raise ValueError("no patterns to pick a victim from")


def run_cluster_cell(
    case: str,
    seed: int,
    traces: int = 6,
    max_events: int = 2000,
    workers: int = 2,
    batch_size: int = DEFAULT_CELL_BATCH_SIZE,
    clock_backend: str = "fidge",
    kill: bool = False,
    credits: Optional[int] = None,
) -> dict:
    """One cluster-vs-in-process equivalence cell; returns a JSON-ready
    cell dict (``ok``/``mismatches`` + vitals)."""
    source = Pipeline.for_case(case, traces, seed)
    recorder = source.record()
    outcome = source.run(max_events=max_events)
    events, names = list(recorder.events), source.trace_names
    patterns = case_patterns(len(names))

    oracle = Pipeline.replay(events, names)
    for name, pattern in patterns.items():
        oracle.watch(name, pattern, record_timings=False)
    oracle_result = oracle.run(batch_size=batch_size)

    cluster_options: Dict[str, object] = {}
    if credits is not None:
        cluster_options["credits"] = credits
    cluster = Pipeline.distributed(
        events, names, workers=workers, clock_backend=clock_backend,
        **cluster_options,
    )
    for name, pattern in patterns.items():
        cluster.watch(name, pattern)

    checkpoint_every = None
    kill_worker_after = None
    restarts_expected = 0
    if kill:
        num_batches = max(1, -(-len(events) // batch_size))
        kill_batch = max(2, num_batches // 2)
        # Checkpoint cadence chosen so at least one checkpoint lands
        # before the kill — recovery then restores real matcher state
        # rather than replaying a fresh worker from scratch.
        checkpoint_every = max(1, kill_batch - 1)
        victim = pick_victim_worker(list(patterns), workers)
        kill_worker_after = (victim, kill_batch)
        restarts_expected = 1
    cluster_result = cluster.run(
        batch_size=batch_size,
        checkpoint_every=checkpoint_every,
        kill_worker_after=kill_worker_after,
    )

    mismatches: List[str] = []
    total_matches = 0
    for name in patterns:
        oracle_monitor = oracle_result[name]
        shard = cluster_result[name]
        total_matches += len(oracle_monitor.reports)
        if not kill and shard.reports != oracle_monitor.reports:
            mismatches.append(f"{name}: match reports differ")
        if shard.signature != oracle_monitor.subset.signature():
            mismatches.append(f"{name}: subset signatures differ")
        if shard.stats != oracle_monitor.stats():
            mismatches.append(
                f"{name}: counters differ (cluster={shard.stats}, "
                f"in-process={oracle_monitor.stats()})"
            )
    if kill and cluster_result.restarts < restarts_expected:
        mismatches.append(
            f"expected >= {restarts_expected} worker restart(s), "
            f"saw {cluster_result.restarts}"
        )
    return {
        "case": case,
        "seed": seed,
        "workers": workers,
        "clock_backend": clock_backend,
        "kill": kill,
        "events": outcome.num_events,
        "matches": total_matches,
        "restarts": cluster_result.restarts,
        "ok": not mismatches,
        "mismatches": mismatches,
    }


__all__ = [
    "DEFAULT_CELL_BATCH_SIZE",
    "pick_victim_worker",
    "run_cluster_cell",
]
