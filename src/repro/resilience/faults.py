"""Deterministic, seeded fault injection for the delivery pipeline.

Two layers of the pipeline can be perturbed:

* **Delivery faults** (:class:`FaultInjector`) sit between the event
  source (kernel sink or recorded stream) and the consumer (a POET
  server's ``collect``, or a hold-back buffer).  They perturb the
  *delivery* of an already-correct linearization: bounded reorder and
  delay, duplicates, and drops.  The injected reorder stays within
  *causal slack* — an event is only deferred past its own causal
  successors — so a downstream hold-back buffer can restore the exact
  original linearization, which is what lets the chaos harness compare
  representative subsets bit-for-bit against the fault-free oracle.

* **Network faults** (:class:`TransmitFaults`) plug into the
  simulation kernel's transmit path
  (:meth:`repro.simulation.kernel.Kernel.set_transmit_fault`) and add
  seeded extra latency to individual messages.  These change the
  computation itself (different interleaving, different clocks) but
  never its validity: the kernel still emits a linearization, so the
  monitor must keep working unmodified.

Everything is deterministic per ``(plan, seed)``: the same fault
schedule replays identically, which the chaos matrix and CI rely on.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, List, Optional

from repro.events.event import Event, EventId
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.spans import NULL_TRACER, SpanTracer

#: The fault kinds a plan can name.
FAULT_KINDS = ("none", "reorder", "delay", "duplicate", "drop", "crash")


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A declarative description of one fault workload.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.  ``reorder`` defers an event past
        exactly one causal successor; ``delay`` defers past up to
        ``max_delay`` of them; ``duplicate`` re-delivers an event a few
        arrivals later; ``drop`` silently discards send events;
        ``crash`` is a client-crash schedule consumed by the chaos
        runner (checkpoint at :meth:`crash_point`, restore, replay).
    probability:
        Per-event chance of injecting the fault (where applicable).
    max_delay:
        Bound on deferral distance (events) for reorder/delay and on
        the duplicate's re-delivery lag.
    max_faults:
        Cap on injected faults per run (``None`` = unlimited); drops
        default to a single fault so a run has one well-defined gap.
    crash_window:
        For ``crash`` plans: the (lo, hi) fractions of the stream
        between which the seeded crash point falls.
    """

    kind: str = "none"
    probability: float = 0.05
    max_delay: int = 4
    max_faults: Optional[int] = None
    crash_window: tuple = (0.25, 0.75)

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.max_delay < 1:
            raise ValueError(f"max_delay must be >= 1, got {self.max_delay}")

    # Named constructors for the standard matrix entries.

    @classmethod
    def reorder(cls, probability: float = 0.1) -> "FaultPlan":
        return cls(kind="reorder", probability=probability, max_delay=1)

    @classmethod
    def delay(cls, probability: float = 0.05, max_delay: int = 8) -> "FaultPlan":
        return cls(kind="delay", probability=probability, max_delay=max_delay)

    @classmethod
    def duplicate(cls, probability: float = 0.1, max_delay: int = 4) -> "FaultPlan":
        return cls(kind="duplicate", probability=probability, max_delay=max_delay)

    @classmethod
    def drop(cls, probability: float = 0.05, max_faults: int = 1) -> "FaultPlan":
        return cls(kind="drop", probability=probability, max_faults=max_faults)

    @classmethod
    def crash(cls, crash_window: tuple = (0.25, 0.75)) -> "FaultPlan":
        return cls(kind="crash", crash_window=crash_window)

    def crash_point(self, num_events: int, seed: int) -> int:
        """Deterministic crash position (events delivered before the
        crash) for a stream of ``num_events`` events."""
        lo = max(1, int(num_events * self.crash_window[0]))
        hi = max(lo + 1, int(num_events * self.crash_window[1]))
        return random.Random(f"crash:{seed}").randrange(lo, hi)


class FaultInjector:
    """Perturbs an in-order event stream, deterministically per seed.

    Feed the original linearization through :meth:`feed` and call
    :meth:`flush` at end-of-stream; the perturbed stream comes out of
    ``sink``.  Usable as a drop-in event sink: wire it between a kernel
    and a server with ``kernel.add_sink(injector.feed)`` where
    ``sink=server.collect``, or wrap any recorded stream replay.

    Reorder/delay faults defer a chosen event only past arrivals that
    are its *causal successors* (their clock already covers it), never
    past concurrent or unrelated events — the "bounded reorder within
    causal slack" contract that keeps the stream repairable to its
    exact original order.

    ``registry`` receives ``fault_injected_total`` /
    ``fault_events_forwarded_total`` counters labelled by the plan's
    kind; ``tracer`` (when enabled) records each injection as a
    ``fault.<kind>`` instant on the ``faults`` wall-clock track.
    """

    def __init__(
        self,
        plan: FaultPlan,
        sink: Callable[[Event], None],
        seed: int = 0,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
    ):
        self.plan = plan
        self._sink = sink
        self._rng = random.Random(f"{plan.kind}:{seed}")
        #: The currently deferred event and its remaining slack budget.
        self._stashed: Optional[Event] = None
        self._stash_budget = 0
        #: Scheduled duplicates: [remaining feeds, event].
        self._dup_queue: List[List] = []
        self.delayed_total = 0
        self.duplicated_total = 0
        self.dropped_total = 0
        self.forwarded_total = 0
        self.dropped_ids: List[EventId] = []
        self.registry = registry if registry is not None else NULL_REGISTRY
        self._tracer = tracer if tracer is not None else NULL_TRACER
        kind_labels = {"kind": plan.kind}
        self._injected_counter = self.registry.counter(
            "fault_injected_total",
            "faults injected into the delivery stream",
            labels=kind_labels,
        )
        self._forwarded_counter = self.registry.counter(
            "fault_events_forwarded_total",
            "events forwarded downstream by the injector",
            labels=kind_labels,
        )

    def _record_injection(self, event: Event) -> None:
        self._injected_counter.inc()
        if self._tracer.enabled:
            self._tracer.instant(
                f"fault.{self.plan.kind}",
                track="faults",
                args={"event": repr(event.event_id)},
            )

    # ------------------------------------------------------------------
    # Stream interface
    # ------------------------------------------------------------------

    def feed(self, event: Event) -> None:
        """Ingest the next in-order event; emits zero or more perturbed
        deliveries to the sink."""
        kind = self.plan.kind
        if kind in ("reorder", "delay"):
            self._feed_deferred(event)
        elif kind == "duplicate":
            self._emit(event)
            if self._may_fault() and self._roll():
                self.duplicated_total += 1
                self._record_injection(event)
                self._dup_queue.append(
                    [self._rng.randint(1, self.plan.max_delay), event]
                )
        elif kind == "drop":
            # Only send events are dropped: a send's receive is a
            # guaranteed causal successor in any complete stream, so
            # the gap is always observable downstream as a stall.
            if (
                event.kind.value == "send"
                and self._may_fault()
                and self._roll()
            ):
                self.dropped_total += 1
                self.dropped_ids.append(event.event_id)
                self._record_injection(event)
            else:
                self._emit(event)
        else:  # none / crash: pass-through
            self._emit(event)
        self._tick_duplicates()

    def flush(self) -> None:
        """End of stream: release anything still deferred or queued."""
        if self._stashed is not None:
            stashed, self._stashed = self._stashed, None
            self._emit(stashed)
        for entry in self._dup_queue:
            self._emit(entry[1])
        self._dup_queue.clear()

    # ------------------------------------------------------------------
    # Fault mechanics
    # ------------------------------------------------------------------

    def _feed_deferred(self, event: Event) -> None:
        if self._stashed is not None:
            stashed = self._stashed
            is_successor = event.clock[stashed.trace] >= stashed.index
            if is_successor and self._stash_budget > 0:
                # Overtake: the successor is delivered first.
                self._stash_budget -= 1
                self._emit(event)
                return
            # Slack exhausted, or the arrival is not causally after the
            # stashed event (overtaking it would leave the perturbed
            # order unrecoverable): release the stash first.
            self._stashed = None
            self._emit(stashed)
        if self._may_fault() and self._roll():
            self.delayed_total += 1
            self._record_injection(event)
            self._stashed = event
            self._stash_budget = (
                1
                if self.plan.kind == "reorder"
                else self._rng.randint(1, self.plan.max_delay)
            )
        else:
            self._emit(event)

    def _tick_duplicates(self) -> None:
        due = []
        for entry in self._dup_queue:
            entry[0] -= 1
            if entry[0] <= 0:
                due.append(entry)
        for entry in due:
            self._dup_queue.remove(entry)
            self._emit(entry[1])

    def _emit(self, event: Event) -> None:
        self.forwarded_total += 1
        self._forwarded_counter.inc()
        self._sink(event)

    def _roll(self) -> bool:
        return self._rng.random() < self.plan.probability

    def _may_fault(self) -> bool:
        if self.plan.max_faults is None:
            return True
        injected = self.delayed_total + self.duplicated_total + self.dropped_total
        return injected < self.plan.max_faults

    @property
    def pending_count(self) -> int:
        """Events currently retained inside the injector: the deferred
        stash plus scheduled duplicates (the stage's queue depth)."""
        return (1 if self._stashed is not None else 0) + len(self._dup_queue)

    def stats(self) -> dict:
        """Plain-dict snapshot of the injected-fault accounting."""
        return {
            "kind": self.plan.kind,
            "delayed": self.delayed_total,
            "duplicated": self.duplicated_total,
            "dropped": self.dropped_total,
            "forwarded": self.forwarded_total,
        }


class TransmitFaults:
    """Seeded extra latency for the kernel's network transmit path.

    Install with :meth:`repro.simulation.kernel.Kernel.set_transmit_fault`;
    each transmitted message independently suffers extra delay with
    ``probability``, uniform in ``[0, max_extra]`` simulated time
    units.  The kernel's non-overtaking clamp still applies afterwards,
    so the perturbed run remains a valid (just different) computation.
    """

    def __init__(
        self,
        seed: int = 0,
        probability: float = 0.2,
        max_extra: float = 5.0,
    ):
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        if max_extra < 0:
            raise ValueError(f"max_extra must be >= 0, got {max_extra}")
        self._rng = random.Random(f"transmit:{seed}")
        self.probability = probability
        self.max_extra = max_extra
        self.faulted_total = 0

    def __call__(self, message) -> float:
        """Extra delay (>= 0) for one message transmission."""
        if self._rng.random() < self.probability:
            self.faulted_total += 1
            return self._rng.uniform(0.0, self.max_extra)
        return 0.0
