"""Measured load shedding: recall/precision accounting vs. the oracle.

The overload machinery's whole claim is that *pattern-aware* shedding
loses less than blind shedding.  This module makes that claim a
measurement instead of an assumption: every shedding run is diffed
against the brute-force oracle (:mod:`repro.core.oracle`) computed on
the **unshedded** stream.

For one recorded case-study stream and one target drop rate the
harness runs two cells:

* **utility** — the real pipeline with a :class:`LoadShedder` forced
  into ``SHEDDING`` state and a ``max_drop_rate`` budget, dropping
  least-useful bands first;
* **random** — exactly the *same number* of events dropped uniformly
  at random (seeded), replayed through an identical gap-tolerant
  monitor.  Same drop count, different drop choice: any recall gap is
  attributable to the scorer.

Per cell it reports:

* **slot recall** — fraction of the oracle's covered ``(leaf, trace)``
  slots that the shedded monitor's representative subset still covers
  (the paper's coverage currency; an unshedded COVERAGE-mode monitor
  covers them all);
* **precision** — fraction of the shedded run's reported matches that
  are genuine against the *full* stream
  (:func:`repro.core.oracle.verify_match`; a gapped monitor can only
  report a false match through a shed ``~>`` in-between witness).

:func:`run_shedding_sweep` grids this over case studies x seeds x drop
rates and is the single producer of the ``BENCH_overload.json``
payload (the ``ocep shed`` subcommand, the CI ``overload-smoke`` job,
and the benchmark gate all call it).  :func:`run_overload_scenario`
exercises the detector *dynamics* instead: a deterministic latency
burst must engage shedding, the EMA must fall back below the
disengage threshold, and the survivors must converge with a fresh
monitor over exactly the kept events.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence

from repro.core.config import MatcherConfig
from repro.core.monitor import Monitor
from repro.core.oracle import covered_slots, enumerate_matches, verify_match
from repro.events.event import Event
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracer
from repro.resilience.overload import (
    BAND_NAMES,
    BAND_STRUCTURAL,
    OverloadDetector,
    OverloadState,
)

#: Target drop rates of the standard sweep.
DEFAULT_RATES = (0.1, 0.2, 0.3)

#: Default event budget per recorded stream — the oracle is a
#: brute-force enumeration, so sweeps stay deliberately small.  Large
#: enough that every case study (deadlock reaches its deadlock around
#: event 1000 at four traces) produces a non-empty oracle.
DEFAULT_SHED_EVENTS = 1200

#: Matcher configuration for every monitor that sees a gapped stream.
GAPPED_CONFIG = MatcherConfig(complete_stream=False)


def forced_shedding_detector(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[SpanTracer] = None,
) -> OverloadDetector:
    """A detector pre-engaged into ``SHEDDING`` and parked there (no
    further observations arrive, so it never disengages).  The recall
    sweep wants a controlled drop rate, not detector dynamics — those
    are exercised by :func:`run_overload_scenario`."""
    detector = OverloadDetector(
        engage_latency=1.0,
        alpha=1.0,
        min_dwell=1,
        critical_factor=1e9,
        registry=registry,
        tracer=tracer,
    )
    detector.observe_latency(2.0)
    assert detector.state is OverloadState.SHEDDING
    return detector


def replay_gapped_monitor(
    events: Sequence[Event],
    pattern_source: str,
    trace_names: Sequence[str],
) -> Monitor:
    """A fresh gap-tolerant monitor fed ``events`` directly (no
    server/store stage: the stores validate per-trace contiguity, and
    a shedded stream legitimately has holes)."""
    monitor = Monitor.from_source(
        pattern_source, trace_names, config=GAPPED_CONFIG,
        record_timings=False,
    )
    for event in events:
        monitor.on_event(event)
    return monitor


def compile_source(pattern_source: str, trace_names: Sequence[str]):
    """The compiled pattern for oracle queries."""
    return Monitor.from_source(
        pattern_source, trace_names, record_timings=False
    ).pattern


@dataclasses.dataclass
class ShedCell:
    """One (case, seed, rate, policy) shedding measurement."""

    case: str
    seed: int
    rate: float
    policy: str
    events: int
    dropped: int
    achieved_rate: float
    #: Oracle matches on the full stream, and how many of them kept
    #: every constituent event — ``recall`` (the headline currency) is
    #: their ratio.  Slot coverage is far coarser (a handful of
    #: ``(leaf, trace)`` pairs each backed by many redundant matches),
    #: so match survival is what separates shedding policies.
    oracle_matches: int
    surviving_matches: int
    recall: float
    #: End-to-end check through the online monitor: oracle slots its
    #: representative subset still covers after the shed.
    oracle_slots: int
    covered_slots: int
    slot_recall: float
    reports: int
    genuine: int
    precision: float

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class ShedReport:
    """The full sweep: cells plus per-case recall-vs-drop-rate curves."""

    cases: List[str]
    seeds: List[int]
    rates: List[float]
    shed_band: str
    cells: List[ShedCell] = dataclasses.field(default_factory=list)

    def _mean_recall(self, case: Optional[str], rate: Optional[float],
                     policy: str) -> Optional[float]:
        picked = [
            cell.recall for cell in self.cells
            if cell.policy == policy
            and (case is None or cell.case == case)
            and (rate is None or cell.rate == rate)
        ]
        if not picked:
            return None
        return sum(picked) / len(picked)

    def curves(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Per-case recall-vs-drop-rate curves, both policies."""
        out: Dict[str, Dict[str, Dict[str, float]]] = {}
        for case in self.cases:
            out[case] = {}
            for rate in self.rates:
                point = {}
                for policy in ("utility", "random"):
                    mean = self._mean_recall(case, rate, policy)
                    if mean is not None:
                        point[policy] = round(mean, 6)
                out[case][str(rate)] = point
        return out

    @property
    def ok(self) -> bool:
        """Utility-aware shedding must beat random: per case at least
        as good on average, and strictly better overall."""
        for case in self.cases:
            utility = self._mean_recall(case, None, "utility")
            rand = self._mean_recall(case, None, "random")
            if utility is None or rand is None:
                return False
            if utility < rand:
                return False
        overall_utility = self._mean_recall(None, None, "utility")
        overall_random = self._mean_recall(None, None, "random")
        return (
            overall_utility is not None
            and overall_random is not None
            and overall_utility > overall_random
        )

    def to_dict(self) -> dict:
        return {
            "cases": list(self.cases),
            "seeds": list(self.seeds),
            "rates": list(self.rates),
            "shed_band": self.shed_band,
            "ok": self.ok,
            "mean_recall": {
                "utility": self._mean_recall(None, None, "utility"),
                "random": self._mean_recall(None, None, "random"),
            },
            "curves": self.curves(),
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def summary(self) -> str:
        lines = [
            f"shedding sweep: cases={','.join(self.cases)} "
            f"seeds={self.seeds} rates={self.rates} "
            f"shed_band={self.shed_band}"
        ]
        for case in self.cases:
            for rate in self.rates:
                utility = self._mean_recall(case, rate, "utility")
                rand = self._mean_recall(case, rate, "random")
                if utility is None or rand is None:
                    continue
                dropped = [
                    cell.achieved_rate for cell in self.cells
                    if cell.case == case and cell.rate == rate
                    and cell.policy == "utility"
                ]
                achieved = sum(dropped) / len(dropped) if dropped else 0.0
                lines.append(
                    f"  {case:<10} rate={rate:.2f} "
                    f"(achieved {achieved:.2f})  "
                    f"utility={utility:.3f}  random={rand:.3f}  "
                    f"{'ok' if utility >= rand else 'WORSE'}"
                )
        overall_utility = self._mean_recall(None, None, "utility")
        overall_random = self._mean_recall(None, None, "random")
        verdict = "ok" if self.ok else "FAIL"
        lines.append(
            f"overall recall: utility={overall_utility:.3f} "
            f"random={overall_random:.3f} -> {verdict}"
        )
        return "\n".join(lines)


def _evaluate(
    case: str,
    seed: int,
    rate: float,
    policy: str,
    monitor: Monitor,
    kept: Sequence[Event],
    pattern,
    events: Sequence[Event],
    dropped: int,
    oracle: Sequence[dict],
    oracle_slots: set,
) -> ShedCell:
    kept_ids = {(e.trace, e.index) for e in kept}
    survivors = [
        match for match in oracle
        if all(
            (e.trace, e.index) in kept_ids for e in match.values()
        )
    ]
    recall = len(survivors) / len(oracle) if oracle else 1.0
    covered = monitor.subset.covered_slots & oracle_slots
    slot_recall = (
        len(covered) / len(oracle_slots) if oracle_slots else 1.0
    )
    reports = monitor.reports
    genuine = sum(
        1 for report in reports
        if verify_match(pattern, report.as_dict(), events)
    )
    precision = genuine / len(reports) if reports else 1.0
    return ShedCell(
        case=case,
        seed=seed,
        rate=rate,
        policy=policy,
        events=len(events),
        dropped=dropped,
        achieved_rate=dropped / len(events) if events else 0.0,
        oracle_matches=len(oracle),
        surviving_matches=len(survivors),
        recall=recall,
        oracle_slots=len(oracle_slots),
        covered_slots=len(covered),
        slot_recall=slot_recall,
        reports=len(reports),
        genuine=genuine,
        precision=precision,
    )


def _utility_cell(
    case: str,
    seed: int,
    rate: float,
    events: Sequence[Event],
    pattern_source: str,
    trace_names: Sequence[str],
    pattern,
    oracle_matches: Sequence[dict],
    oracle_slots: set,
    shed_band: int,
) -> ShedCell:
    from repro.engine.pipeline import Pipeline

    pipeline = Pipeline.replay(events, trace_names)
    pipeline.with_overload_control(
        detector=forced_shedding_detector(),
        shed_band=shed_band,
        critical_band=shed_band,
        max_drop_rate=rate,
        record_kept=True,
    )
    monitor = pipeline.watch("shed", pattern_source, record_timings=False)
    result = pipeline.run()
    shedder = result.shedder
    return _evaluate(
        case, seed, rate, "utility", monitor, shedder.kept_events,
        pattern, events, shedder.shed_total, oracle_matches, oracle_slots,
    )


def _random_cell(
    case: str,
    seed: int,
    rate: float,
    events: Sequence[Event],
    pattern_source: str,
    trace_names: Sequence[str],
    pattern,
    oracle_matches: Sequence[dict],
    oracle_slots: set,
    drop_count: int,
) -> ShedCell:
    rng = random.Random((seed * 2654435761 + int(rate * 1000)) % (2 ** 32))
    dropped = set(rng.sample(range(len(events)), drop_count))
    kept = [e for i, e in enumerate(events) if i not in dropped]
    monitor = replay_gapped_monitor(kept, pattern_source, trace_names)
    return _evaluate(
        case, seed, rate, "random", monitor, kept, pattern, events,
        drop_count, oracle_matches, oracle_slots,
    )


def run_shedding_sweep(
    cases: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = range(10),
    rates: Sequence[float] = DEFAULT_RATES,
    traces: int = 4,
    max_events: int = DEFAULT_SHED_EVENTS,
    shed_band: int = BAND_STRUCTURAL,
    clock_backend: str = "fidge",
) -> ShedReport:
    """The full recall/precision grid: case studies x seeds x rates,
    one utility and one count-matched random cell each.

    The oracle (brute-force enumeration on the unshedded stream) is
    computed once per recorded stream and shared across rates.
    """
    from repro.engine.cases import CASE_STUDY_NAMES
    from repro.engine.pipeline import Pipeline

    case_names = list(cases) if cases else list(CASE_STUDY_NAMES)
    report = ShedReport(
        cases=case_names,
        seeds=list(seeds),
        rates=list(rates),
        shed_band=BAND_NAMES[shed_band],
    )
    for case in case_names:
        for seed in report.seeds:
            source = Pipeline.for_case(
                case, traces, seed, clock_backend=clock_backend
            )
            recorder = source.record()
            source.run(max_events=max_events)
            events = recorder.events
            names = source.trace_names
            pattern_source = source.case_pattern
            pattern = compile_source(pattern_source, names)
            oracle_matches = enumerate_matches(pattern, events)
            oracle_slots = covered_slots(oracle_matches)
            for rate in report.rates:
                utility = _utility_cell(
                    case, seed, rate, events, pattern_source, names,
                    pattern, oracle_matches, oracle_slots, shed_band,
                )
                report.cells.append(utility)
                report.cells.append(_random_cell(
                    case, seed, rate, events, pattern_source, names,
                    pattern, oracle_matches, oracle_slots,
                    utility.dropped,
                ))
    return report


# ----------------------------------------------------------------------
# Detector-dynamics scenario (the `ocep chaos` overload scenario)
# ----------------------------------------------------------------------

#: Thresholds of the scenario detector (simulated latency units).
SCENARIO_ENGAGE_LATENCY = 8.0
SCENARIO_MIN_DWELL = 8


def burst_latency_profile(num_events: int, seed: int):
    """Deterministic synthetic latency signal: calm for the first
    quarter of the stream, a sustained burst (3x the engage mark)
    through the second quarter, calm again after — enough calm tail
    for the EMA to fall back below the disengage threshold."""
    burst_lo = max(1, num_events // 4)
    burst_hi = max(burst_lo + 1, num_events // 2)

    def profile(offered: int) -> float:
        jitter = ((offered * 2654435761 + seed * 40503) % 97) / 97.0
        base = 0.5 + 0.25 * jitter
        if burst_lo <= offered < burst_hi:
            return SCENARIO_ENGAGE_LATENCY * 3.0 + base
        return base

    return profile


@dataclasses.dataclass
class OverloadScenarioRun:
    """Outcome of one overload-scenario seed."""

    seed: int
    ok: bool
    detail: str
    shed: int
    offered: int
    engaged: bool
    disengaged: bool
    final_latency_ema: float
    disengage_latency: float
    transitions: int

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def run_overload_scenario(
    events: Sequence[Event],
    pattern_source: str,
    trace_names: Sequence[str],
    seeds: Sequence[int] = range(10),
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[SpanTracer] = None,
) -> List[OverloadScenarioRun]:
    """Exercise the detector's full engage/shed/disengage cycle.

    Per seed: replay the stream with a live detector fed the seeded
    burst profile.  The run passes iff the detector engaged, events
    were actually shed, the latency EMA returned below the disengage
    threshold (final state ``NORMAL``), and a fresh gap-tolerant
    monitor over exactly the kept events reproduces the pipeline
    monitor's subset signature and reports (the oracle on kept
    events).
    """
    from repro.engine.pipeline import Pipeline

    runs: List[OverloadScenarioRun] = []
    for seed in seeds:
        pipeline = Pipeline.replay(
            events, trace_names, registry=registry, tracer=tracer
        )
        detector = OverloadDetector(
            engage_latency=SCENARIO_ENGAGE_LATENCY,
            min_dwell=SCENARIO_MIN_DWELL,
            registry=registry,
            tracer=tracer,
        )
        pipeline.with_overload_control(
            detector=detector,
            shed_band=BAND_STRUCTURAL,
            latency_profile=burst_latency_profile(len(events), seed),
            record_kept=True,
        )
        monitor = pipeline.watch(
            "overload", pattern_source, record_timings=False
        )
        result = pipeline.run()
        shedder = result.shedder

        engaged = detector.transitions_total >= 1 and shedder.shed_total > 0
        disengaged = (
            detector.state is OverloadState.NORMAL
            and detector.latency_ema is not None
            and detector.latency_ema <= detector.disengage_latency
        )
        reference = replay_gapped_monitor(
            shedder.kept_events, pattern_source, trace_names
        )
        converged = (
            reference.subset.signature() == monitor.subset.signature()
            and reference.reports == monitor.reports
        )
        ok = engaged and disengaged and converged
        if not engaged:
            detail = "detector never engaged / nothing shed"
        elif not disengaged:
            detail = (
                f"EMA {detector.latency_ema:.2f} still above disengage "
                f"{detector.disengage_latency:.2f} "
                f"(state {detector.state.name})"
            )
        elif not converged:
            detail = "kept-events replay diverged from shedded pipeline"
        else:
            detail = (
                f"shed {shedder.shed_total}/{shedder.offered_total}, "
                f"EMA back to {detector.latency_ema:.2f} "
                f"<= {detector.disengage_latency:.2f}"
            )
        runs.append(OverloadScenarioRun(
            seed=seed,
            ok=ok,
            detail=detail,
            shed=shedder.shed_total,
            offered=shedder.offered_total,
            engaged=engaged,
            disengaged=disengaged,
            final_latency_ema=float(detector.latency_ema or 0.0),
            disengage_latency=detector.disengage_latency,
            transitions=detector.transitions_total,
        ))
    return runs


__all__ = [
    "DEFAULT_RATES",
    "DEFAULT_SHED_EVENTS",
    "GAPPED_CONFIG",
    "ShedCell",
    "ShedReport",
    "OverloadScenarioRun",
    "forced_shedding_detector",
    "replay_gapped_monitor",
    "burst_latency_profile",
    "run_shedding_sweep",
    "run_overload_scenario",
]
