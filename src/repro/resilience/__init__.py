"""Fault tolerance for the event-delivery pipeline.

The paper's substrate *assumes* clients "receive the arriving events in
a linearization of the partial order" (Section V-A); this package makes
the reproduction survive violations of that assumption instead of
asserting on them:

* :mod:`~repro.resilience.faults` — a deterministic, seeded fault
  injector perturbing the stream between instrumentation and delivery
  (bounded reorder/delay within causal slack, duplicates, drops,
  client-crash schedules), plus network-level transmit faults for the
  simulation kernel;
* :mod:`~repro.resilience.chaos` — the seeded fault matrix: every
  (plan, seed) run is checked against the fault-free oracle, drops
  must surface as hold-back stalls, and a mid-stream checkpoint/restore
  must converge to the identical representative subset.  Driven by the
  ``ocep chaos`` CLI subcommand and the CI chaos job.

The repair half — the causal hold-back buffer — lives with the
delivery substrate as :mod:`repro.poet.holdback`.
"""

from repro.resilience.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    TransmitFaults,
)
from repro.resilience.chaos import (
    DEFAULT_PLANS,
    DEFAULT_STALL_WATERMARK,
    ChaosReport,
    ChaosRun,
    run_fault_matrix,
)

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultInjector",
    "TransmitFaults",
    "ChaosRun",
    "ChaosReport",
    "DEFAULT_PLANS",
    "DEFAULT_STALL_WATERMARK",
    "run_fault_matrix",
]
