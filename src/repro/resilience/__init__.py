"""Fault tolerance and overload control for the delivery pipeline.

The paper's substrate *assumes* clients "receive the arriving events in
a linearization of the partial order" (Section V-A); this package makes
the reproduction survive violations of that assumption instead of
asserting on them:

* :mod:`~repro.resilience.faults` — a deterministic, seeded fault
  injector perturbing the stream between instrumentation and delivery
  (bounded reorder/delay within causal slack, duplicates, drops,
  client-crash schedules), plus network-level transmit faults for the
  simulation kernel;
* :mod:`~repro.resilience.chaos` — the seeded fault matrix: every
  (plan, seed) run is checked against the fault-free oracle, drops
  must surface as hold-back stalls, and a mid-stream checkpoint/restore
  must converge to the identical representative subset.  Driven by the
  ``ocep chaos`` CLI subcommand and the CI chaos job;
* :mod:`~repro.resilience.overload` — adaptive backpressure: an
  EMA/variance :class:`OverloadDetector` with hysteresis, a
  pattern-aware :class:`EventUtilityScorer`, and the
  :class:`LoadShedder` pipeline stage that drops least-useful events
  first when the monitor falls behind;
* :mod:`~repro.resilience.shedding` — the measurement half of load
  shedding: every shedding run is diffed against the brute-force
  oracle on the unshedded stream (slot recall, match precision), and
  utility-aware drops must beat count-matched random drops.  Driven by
  the ``ocep shed`` subcommand and the CI ``overload-smoke`` job;
* :mod:`~repro.resilience.cluster_chaos` — the same oracle-diff
  discipline for the multi-process runtime: every ``(case, seed,
  workers)`` cell diffs an ``ocep cluster`` deployment against the
  in-process sharded run, and ``kill`` cells SIGKILL a shard-owning
  worker mid-stream and require counter-exact convergence after
  checkpoint recovery.  Driven by the ``ocep cluster`` subcommand and
  the CI ``cluster-smoke`` job.

The repair half — the causal hold-back buffer — lives with the
delivery substrate as :mod:`repro.poet.holdback`.
"""

from repro.resilience.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    TransmitFaults,
)
from repro.resilience.chaos import (
    DEFAULT_PLANS,
    DEFAULT_STALL_WATERMARK,
    SHED_CELL_RATE,
    ChaosReport,
    ChaosRun,
    run_fault_matrix,
)
from repro.resilience.overload import (
    BAND_CHAFF,
    BAND_COMPLETING,
    BAND_LEAF,
    BAND_NAMES,
    BAND_STRUCTURAL,
    EventUtilityScorer,
    LoadShedder,
    OverloadDetector,
    OverloadState,
)
from repro.resilience.cluster_chaos import (
    DEFAULT_CELL_BATCH_SIZE,
    pick_victim_worker,
    run_cluster_cell,
)
from repro.resilience.shedding import (
    DEFAULT_RATES,
    OverloadScenarioRun,
    ShedCell,
    ShedReport,
    burst_latency_profile,
    forced_shedding_detector,
    replay_gapped_monitor,
    run_overload_scenario,
    run_shedding_sweep,
)

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultInjector",
    "TransmitFaults",
    "ChaosRun",
    "ChaosReport",
    "DEFAULT_PLANS",
    "DEFAULT_STALL_WATERMARK",
    "SHED_CELL_RATE",
    "run_fault_matrix",
    "BAND_CHAFF",
    "BAND_STRUCTURAL",
    "BAND_LEAF",
    "BAND_COMPLETING",
    "BAND_NAMES",
    "OverloadState",
    "OverloadDetector",
    "EventUtilityScorer",
    "LoadShedder",
    "DEFAULT_RATES",
    "ShedCell",
    "ShedReport",
    "OverloadScenarioRun",
    "forced_shedding_detector",
    "replay_gapped_monitor",
    "burst_latency_profile",
    "run_shedding_sweep",
    "run_overload_scenario",
    "DEFAULT_CELL_BATCH_SIZE",
    "pick_victim_worker",
    "run_cluster_cell",
]
