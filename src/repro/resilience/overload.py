"""Overload control: adaptive backpressure and pattern-aware shedding.

An online monitor that falls behind its stream has two bad options:
stall (unbounded latency) or drop blindly (unmeasured recall loss).
This module gives the pipeline a third one — *degrade gracefully*:

* :class:`OverloadDetector` — a hysteresis state machine over smoothed
  detection-latency and backlog observations.  It keeps an EMA (plus an
  exponentially weighted variance) of the
  ``ocep_detection_latency_sim_time`` samples and of the hold-back
  backlog depth, folds them into a scalar *pressure* (observation /
  engage threshold), and flips ``NORMAL -> SHEDDING -> CRITICAL`` one
  step at a time.  Separate engage and disengage (low-water) marks plus
  a minimum dwell between transitions prevent flapping: once engaged,
  the detector stays engaged until pressure falls *below* the low-water
  fraction of the engage mark, and never transitions twice within
  ``min_dwell`` observations.

* :class:`EventUtilityScorer` — scores each incoming event by how
  likely it is to complete (or enable) a match of the watched patterns,
  by consulting the compiled pattern tree and the matchers' *current*
  leaf histories: a leaf-class hit whose terminating search could
  complete right now (every other leaf history non-empty) is
  ``BAND_COMPLETING``; any leaf-class hit, or a communication event
  whose ``<>`` partner is already pinned in a PARTNER-constrained leaf
  history, is ``BAND_LEAF``; other communication events are
  ``BAND_STRUCTURAL`` (their clock merges feed the GP/LS index even
  when they match no leaf); everything else is ``BAND_CHAFF``.

* :class:`LoadShedder` — the pipeline stage between the hold-back
  buffer and the :class:`~repro.engine.dispatch.ShardedDispatcher`.
  In ``NORMAL`` state events pass through unscored (the disabled-path
  overhead gate relies on this); in ``SHEDDING`` it drops events with
  band <= ``shed_band`` and in ``CRITICAL`` band <= ``critical_band``,
  least-useful first, under an optional ``max_drop_rate`` budget.
  Fully instrumented (drop counters labelled by utility band and
  detector state, the shared ``poet_holdback_shed_total`` series with
  ``reason="overload"``, detector-state gauge, ``overload.state``
  spans) and checkpointable alongside ``ocep-sharded-checkpoint-v1``.

The quality of the whole arrangement is *measured, not assumed*:
:mod:`repro.resilience.shedding` diffs every shedding run against the
brute-force oracle on the unshedded stream.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.events.event import Event, EventId
from repro.obs.log import get_logger
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.spans import NULL_TRACER, SpanTracer
from repro.patterns.compile import Constraint
from repro.poet.client import POETClient

_log = get_logger("resilience.overload")

#: Utility bands, least useful first.  ``BAND_NAMES`` doubles as the
#: metric-label vocabulary.
BAND_CHAFF = 0
BAND_STRUCTURAL = 1
BAND_LEAF = 2
BAND_COMPLETING = 3
BAND_NAMES: Tuple[str, ...] = ("chaff", "structural", "leaf", "completing")

#: Shared shed-accounting metric (same name as the hold-back buffer's
#: overflow series; the ``reason`` label separates the two paths).
SHED_METRIC = "poet_holdback_shed_total"
SHED_HELP = "arrivals dropped by the shed policy"


class OverloadState(enum.IntEnum):
    """Detector states, ordered by severity."""

    NORMAL = 0
    SHEDDING = 1
    CRITICAL = 2


class OverloadDetector:
    """Hysteresis overload state machine over latency/backlog EMAs.

    Parameters
    ----------
    engage_latency:
        Detection-latency EMA (simulated time units) at which pressure
        reaches 1.0 and ``NORMAL -> SHEDDING`` engages.
    engage_backlog:
        Optional backlog-depth EMA with the same meaning; ``None``
        ignores backlog entirely.  Pressure is the max of the two
        component ratios.
    disengage_fraction:
        Low-water mark as a fraction of the engage mark: the detector
        only steps back toward ``NORMAL`` once pressure drops to or
        below this fraction (and leaves ``CRITICAL`` once pressure
        drops to or below ``critical_factor * disengage_fraction``).
    critical_factor:
        Pressure multiple at which ``SHEDDING -> CRITICAL`` engages.
    alpha:
        EMA smoothing factor (weight of the newest observation).
    min_dwell:
        Minimum observations between two state transitions (flap
        guard).  The very first transition is exempt so a cold
        detector can engage on a genuine burst immediately.
    registry / tracer:
        Optional instrumentation: an ``ocep_overload_state`` gauge, a
        transition counter labelled ``from``/``to``, and
        ``overload.state`` instants on the ``resilience.overload``
        track.

    The detector is a pure function of its observation sequence: two
    detectors fed the same values through :meth:`observe_latency` /
    :meth:`observe_backlog` in the same order are in identical states
    (the hypothesis suite asserts this).
    """

    def __init__(
        self,
        engage_latency: float = 64.0,
        engage_backlog: Optional[float] = None,
        disengage_fraction: float = 0.5,
        critical_factor: float = 4.0,
        alpha: float = 0.25,
        min_dwell: int = 16,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
    ):
        if engage_latency <= 0.0:
            raise ValueError(f"engage_latency must be > 0, got {engage_latency}")
        if engage_backlog is not None and engage_backlog <= 0.0:
            raise ValueError(f"engage_backlog must be > 0, got {engage_backlog}")
        if not 0.0 < disengage_fraction < 1.0:
            raise ValueError(
                f"disengage_fraction must be in (0, 1), got {disengage_fraction}"
            )
        if critical_factor <= 1.0:
            raise ValueError(
                f"critical_factor must be > 1, got {critical_factor}"
            )
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if min_dwell < 1:
            raise ValueError(f"min_dwell must be >= 1, got {min_dwell}")
        self.engage_latency = engage_latency
        self.engage_backlog = engage_backlog
        self.disengage_fraction = disengage_fraction
        self.critical_factor = critical_factor
        self.alpha = alpha
        self.min_dwell = min_dwell

        self.state = OverloadState.NORMAL
        self.observations = 0
        self.transitions_total = 0
        self._latency_ema: Optional[float] = None
        self._latency_var = 0.0
        self._backlog_ema: Optional[float] = None
        # Start "dwelled out" so the first engage is immediate; every
        # later transition is spaced by min_dwell observations.
        self._since_transition = min_dwell

        self._tracer = tracer if tracer is not None else NULL_TRACER
        self.registry = registry if registry is not None else NULL_REGISTRY
        self._state_gauge = self.registry.gauge(
            "ocep_overload_state",
            "overload detector state (0=normal, 1=shedding, 2=critical)",
        )
        self._state_gauge.set(int(self.state))
        self._transition_counters: Dict[Tuple[str, str], object] = {}

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------

    def observe_latency(self, value: float) -> None:
        """Fold one detection-latency sample into the EMA and step."""
        if self._latency_ema is None:
            self._latency_ema = float(value)
            self._latency_var = 0.0
        else:
            delta = float(value) - self._latency_ema
            increment = self.alpha * delta
            self._latency_ema += increment
            self._latency_var = (1.0 - self.alpha) * (
                self._latency_var + delta * increment
            )
        self._step()

    def observe_backlog(self, depth: float) -> None:
        """Fold one backlog-depth sample into the EMA and step."""
        if self._backlog_ema is None:
            self._backlog_ema = float(depth)
        else:
            self._backlog_ema += self.alpha * (float(depth) - self._backlog_ema)
        self._step()

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------

    @property
    def latency_ema(self) -> Optional[float]:
        return self._latency_ema

    @property
    def latency_variance(self) -> float:
        return self._latency_var

    @property
    def latency_std(self) -> float:
        return self._latency_var ** 0.5

    @property
    def backlog_ema(self) -> Optional[float]:
        return self._backlog_ema

    @property
    def disengage_latency(self) -> float:
        """The latency low-water mark in absolute units."""
        return self.engage_latency * self.disengage_fraction

    @property
    def pressure(self) -> float:
        """Smoothed load relative to the engage thresholds (1.0 =
        engage mark reached on some component)."""
        pressure = 0.0
        if self._latency_ema is not None:
            pressure = self._latency_ema / self.engage_latency
        if self.engage_backlog is not None and self._backlog_ema is not None:
            pressure = max(pressure, self._backlog_ema / self.engage_backlog)
        return pressure

    def _desired(self) -> OverloadState:
        pressure = self.pressure
        low = self.disengage_fraction
        critical = self.critical_factor
        if self.state is OverloadState.CRITICAL:
            if pressure > critical * low:
                return OverloadState.CRITICAL
            if pressure > low:
                return OverloadState.SHEDDING
            return OverloadState.NORMAL
        if self.state is OverloadState.SHEDDING:
            if pressure >= critical:
                return OverloadState.CRITICAL
            if pressure > low:
                return OverloadState.SHEDDING
            return OverloadState.NORMAL
        if pressure >= critical:
            return OverloadState.CRITICAL
        if pressure >= 1.0:
            return OverloadState.SHEDDING
        return OverloadState.NORMAL

    def _step(self) -> None:
        self.observations += 1
        self._since_transition += 1
        desired = self._desired()
        if desired is self.state or self._since_transition <= self.min_dwell:
            return
        # One state per transition, so an overload ramp is visible as
        # NORMAL -> SHEDDING -> CRITICAL in the gauge and the spans.
        step = 1 if desired > self.state else -1
        self._transition(OverloadState(int(self.state) + step))

    def _transition(self, new_state: OverloadState) -> None:
        old_state = self.state
        self.state = new_state
        self._since_transition = 0
        self.transitions_total += 1
        self._state_gauge.set(int(new_state))
        key = (old_state.name.lower(), new_state.name.lower())
        counter = self._transition_counters.get(key)
        if counter is None:
            counter = self.registry.counter(
                "ocep_overload_transitions_total",
                "overload detector state transitions",
                labels={"from": key[0], "to": key[1]},
            )
            self._transition_counters[key] = counter
        counter.inc()
        _log.info(
            "overload state transition",
            extra={"from": key[0], "to": key[1],
                   "pressure": round(self.pressure, 4),
                   "observations": self.observations},
        )
        if self._tracer.enabled:
            self._tracer.instant(
                "overload.state",
                track="resilience.overload",
                args={"from": key[0], "to": key[1],
                      "pressure": round(self.pressure, 4),
                      "latency_ema": self._latency_ema,
                      "backlog_ema": self._backlog_ema},
            )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready copy of the detector's dynamic state."""
        return {
            "state": int(self.state),
            "latency_ema": self._latency_ema,
            "latency_var": self._latency_var,
            "backlog_ema": self._backlog_ema,
            "observations": self.observations,
            "since_transition": self._since_transition,
            "transitions": self.transitions_total,
        }

    def restore(self, state: dict) -> None:
        """Overwrite the dynamic state from a :meth:`snapshot`."""
        self.state = OverloadState(int(state["state"]))
        self._latency_ema = (
            None if state["latency_ema"] is None else float(state["latency_ema"])
        )
        self._latency_var = float(state["latency_var"])
        self._backlog_ema = (
            None if state["backlog_ema"] is None else float(state["backlog_ema"])
        )
        self.observations = int(state["observations"])
        self._since_transition = int(state["since_transition"])
        self.transitions_total = int(state["transitions"])
        self._state_gauge.set(int(self.state))

    def __repr__(self) -> str:
        return (
            f"OverloadDetector({self.state.name}, "
            f"pressure={self.pressure:.3f}, "
            f"observations={self.observations})"
        )


class EventUtilityScorer:
    """Scores events by likelihood of contributing to a pattern match.

    Consults the watched matchers' compiled patterns and *live* state
    (leaf histories, terminating leaves, ``<>`` partner pins), so the
    same event can score differently as partial matches accumulate.
    With multiple shards the score is the max over shards — an event
    is only chaff if *no* watched pattern wants it.

    Band rules per shard (highest wins):

    * ``BAND_COMPLETING`` — the event matches a *terminating* leaf's
      class and every other leaf history is already non-empty, so the
      triggered search could complete a match right now.
    * ``BAND_LEAF`` — the event matches some leaf class; or it is a
      communication event whose partner is already stored in a
      PARTNER-constrained leaf history (dropping it would orphan a
      pinned ``<>`` pair and starve its LS entries).
    * ``BAND_STRUCTURAL`` — any other communication event: its clock
      merge is what keeps the GP/LS domain index (and the pruning
      rule's comm epochs) informed.
    * ``BAND_CHAFF`` — everything else; invisible to the matcher.
    """

    def __init__(self, monitors: Sequence[object]):
        matchers = [
            monitor.matcher if hasattr(monitor, "matcher") else monitor
            for monitor in monitors
        ]
        if not matchers:
            raise ValueError("scorer needs at least one monitor/matcher")
        self._matchers = matchers
        # Leaves participating in any PARTNER (<>) constraint, per
        # matcher — the "pinned trace" refinement only applies there.
        self._partner_leaves: List[Tuple[int, ...]] = []
        for matcher in matchers:
            matrix = matcher.pattern.constraint_matrix
            pinned = tuple(
                i for i, row in enumerate(matrix)
                if any(c is Constraint.PARTNER for c in row)
            )
            self._partner_leaves.append(pinned)

    def score(self, event: Event) -> int:
        """The event's utility band (max across watched shards)."""
        best = BAND_CHAFF
        for position, matcher in enumerate(self._matchers):
            band = self._score_one(position, matcher, event)
            if band > best:
                best = band
                if best == BAND_COMPLETING:
                    break
        return best

    def _score_one(self, position: int, matcher, event: Event) -> int:
        etype = event.etype
        text = event.text
        trace = event.trace
        table = matcher._trace_name_table
        trace_name = table[trace] if 0 <= trace < len(table) else str(trace)
        str_trace = str(trace)
        hit = False
        for leaf, exact_etype, exact_process, exact_text, _ in matcher._leaf_filters:
            if exact_etype is not None and exact_etype != etype:
                continue
            if exact_text is not None and exact_text != text:
                continue
            if (
                exact_process is not None
                and exact_process != trace_name
                and exact_process != str_trace
            ):
                continue
            if leaf.event_class.matches(event) is None:
                continue
            hit = True
            if leaf.leaf_id in matcher._terminating and self._others_nonempty(
                matcher, leaf.leaf_id
            ):
                return BAND_COMPLETING
        if hit:
            return BAND_LEAF
        if event.kind.is_communication:
            if self._partner_pinned(position, matcher, event):
                return BAND_LEAF
            return BAND_STRUCTURAL
        return BAND_CHAFF

    @staticmethod
    def _others_nonempty(matcher, leaf_id: int) -> bool:
        history = matcher.history
        for leaf in matcher.pattern.leaves:
            if leaf.leaf_id != leaf_id and history.leaf(leaf.leaf_id).size == 0:
                return False
        return True

    def _partner_pinned(self, position: int, matcher, event: Event) -> bool:
        partner = event.partner
        if partner is None:
            return False
        history = matcher.history
        for leaf_id in self._partner_leaves[position]:
            if history.leaf(leaf_id).slice(
                partner.trace, partner.index, partner.index
            ):
                return True
        return False


class LoadShedder(POETClient):
    """Pipeline stage dropping low-utility events under overload.

    Sits between the hold-back buffer (or the server) and the sharded
    dispatcher.  While the detector reports ``NORMAL`` the stage is a
    pass-through — no scoring, batches forwarded whole — so the
    overload-disabled overhead gate holds.  Once the detector engages,
    each event is scored and dropped when its band is at or below the
    state's threshold (``shed_band`` in SHEDDING, ``critical_band`` in
    CRITICAL), subject to the optional ``max_drop_rate`` budget.

    Parameters
    ----------
    sink:
        Downstream :class:`~repro.poet.client.POETClient` (normally the
        dispatcher).
    scorer / detector:
        The :class:`EventUtilityScorer` and :class:`OverloadDetector`.
    shed_band / critical_band:
        Highest band dropped in SHEDDING / CRITICAL state.
    max_drop_rate:
        Hard ceiling on ``shed_total / offered_total``; ``None`` is
        unbounded.
    latency_profile:
        Optional callable ``offered_count -> latency sample`` fed to
        the detector per offered event — a deterministic synthetic load
        signal for replays, where no kernel clock advances (live
        pipelines feed the detector from the
        :class:`~repro.obs.latency.DetectionLatencyTracker` instead).
    backlog_probe:
        Optional zero-argument callable polled per offered event for
        the backlog depth (wired to ``holdback.pending_count`` by
        ``Pipeline.with_overload_control``).
    record_kept:
        Keep the admitted events in :attr:`kept_events` (the recall
        harness replays them through a reference monitor).
    """

    def __init__(
        self,
        sink: POETClient,
        scorer: EventUtilityScorer,
        detector: OverloadDetector,
        shed_band: int = BAND_CHAFF,
        critical_band: int = BAND_STRUCTURAL,
        max_drop_rate: Optional[float] = None,
        latency_profile: Optional[Callable[[int], float]] = None,
        backlog_probe: Optional[Callable[[], float]] = None,
        record_kept: bool = False,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
    ):
        if not BAND_CHAFF <= shed_band < BAND_COMPLETING:
            raise ValueError(
                f"shed_band must be in [{BAND_CHAFF}, {BAND_COMPLETING - 1}], "
                f"got {shed_band}"
            )
        if not shed_band <= critical_band < BAND_COMPLETING:
            raise ValueError(
                f"critical_band must be in [{shed_band}, "
                f"{BAND_COMPLETING - 1}], got {critical_band}"
            )
        if max_drop_rate is not None and not 0.0 < max_drop_rate <= 1.0:
            raise ValueError(
                f"max_drop_rate must be in (0, 1], got {max_drop_rate}"
            )
        self._sink = sink
        self._scorer = scorer
        self.detector = detector
        self._shed_band = shed_band
        self._critical_band = critical_band
        self._max_drop_rate = max_drop_rate
        self._latency_profile = latency_profile
        self._backlog_probe = backlog_probe
        self.offered_total = 0
        self.shed_total = 0
        self.dropped_ids: List[EventId] = []
        self.kept_events: Optional[List[Event]] = [] if record_kept else None

        self._tracer = tracer if tracer is not None else NULL_TRACER
        self.registry = registry if registry is not None else NULL_REGISTRY
        self._overload_shed_counter = self.registry.counter(
            SHED_METRIC, SHED_HELP, labels={"reason": "overload"}
        )
        self._band_counters: Dict[Tuple[int, OverloadState], object] = {}

    def set_backlog_probe(self, probe: Optional[Callable[[], float]]) -> None:
        """Late-bind the backlog probe (the hold-back buffer is built
        after the shedder during pipeline wiring)."""
        self._backlog_probe = probe

    @property
    def scorer(self) -> EventUtilityScorer:
        return self._scorer

    @property
    def drop_rate(self) -> float:
        if self.offered_total == 0:
            return 0.0
        return self.shed_total / self.offered_total

    # ------------------------------------------------------------------
    # POET client interface
    # ------------------------------------------------------------------

    def on_event(self, event: Event) -> None:
        if self._admit(event):
            self._sink.on_event(event)

    def on_batch(self, events: Sequence[Event]) -> None:
        if not events:
            return
        if (
            self._latency_profile is None
            and self._backlog_probe is None
            and self.detector.state is OverloadState.NORMAL
        ):
            # Pass-through fast path: no per-event work at all beyond
            # optional recording; the whole batch stays a batch.
            self.offered_total += len(events)
            if self.kept_events is not None:
                self.kept_events.extend(events)
            self._sink.on_batch(events)
            return
        # Scoring consults live matcher state, so admitted events are
        # forwarded one by one to keep the scorer synchronous with the
        # histories it reads (batch-size invariant by construction).
        sink_event = self._sink.on_event
        for event in events:
            if self._admit(event):
                sink_event(event)

    def _admit(self, event: Event) -> bool:
        self.offered_total += 1
        detector = self.detector
        if self._latency_profile is not None:
            detector.observe_latency(self._latency_profile(self.offered_total))
        if self._backlog_probe is not None:
            detector.observe_backlog(self._backlog_probe())
        state = detector.state
        if state is not OverloadState.NORMAL:
            band = self._scorer.score(event)
            limit = (
                self._critical_band
                if state is OverloadState.CRITICAL
                else self._shed_band
            )
            if band <= limit and self._within_budget():
                self.shed_total += 1
                self.dropped_ids.append(event.event_id)
                self._count_drop(band, state)
                if self._tracer.enabled:
                    self._tracer.instant(
                        "overload.shed",
                        track="resilience.overload",
                        args={"event": repr(event.event_id),
                              "band": BAND_NAMES[band],
                              "state": state.name.lower()},
                    )
                return False
        if self.kept_events is not None:
            self.kept_events.append(event)
        return True

    def _within_budget(self) -> bool:
        if self._max_drop_rate is None:
            return True
        return self.shed_total + 1 <= self._max_drop_rate * self.offered_total

    def _count_drop(self, band: int, state: OverloadState) -> None:
        self._overload_shed_counter.inc()
        key = (band, state)
        counter = self._band_counters.get(key)
        if counter is None:
            counter = self.registry.counter(
                "ocep_overload_shed_total",
                "events dropped by the load shedder",
                labels={"band": BAND_NAMES[band],
                        "state": state.name.lower()},
            )
            self._band_counters[key] = counter
        counter.inc()

    # ------------------------------------------------------------------
    # Checkpointing / introspection
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready shedder accounting plus the detector's state
        (embedded under the ``overload`` key of the sharded pipeline
        checkpoint)."""
        return {
            "detector": self.detector.snapshot(),
            "offered": self.offered_total,
            "shed": self.shed_total,
        }

    def restore(self, state: dict) -> None:
        self.detector.restore(state["detector"])
        self.offered_total = int(state["offered"])
        self.shed_total = int(state["shed"])

    def stats(self) -> Dict[str, object]:
        """Plain-dict snapshot of the shedder's accounting."""
        return {
            "offered": self.offered_total,
            "shed": self.shed_total,
            "drop_rate": round(self.drop_rate, 6),
            "state": self.detector.state.name.lower(),
            "pressure": round(self.detector.pressure, 6),
            "transitions": self.detector.transitions_total,
        }

    def __repr__(self) -> str:
        return (
            f"LoadShedder({self.detector.state.name}, "
            f"shed {self.shed_total}/{self.offered_total})"
        )


__all__ = [
    "BAND_CHAFF",
    "BAND_STRUCTURAL",
    "BAND_LEAF",
    "BAND_COMPLETING",
    "BAND_NAMES",
    "OverloadState",
    "OverloadDetector",
    "EventUtilityScorer",
    "LoadShedder",
]
