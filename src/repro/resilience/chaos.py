"""The seeded chaos matrix: fault plans checked against an oracle.

For one recorded computation (a valid linearization, e.g. captured by a
:class:`~repro.poet.client.RecordingClient` or loaded from a dumpfile)
the harness first computes the *fault-free oracle*: the representative
subset an uninterrupted monitor produces.  It then replays the stream
through every ``(plan, seed)`` cell of the matrix:

* **reorder / delay / duplicate** — the perturbed stream flows through
  a :class:`~repro.poet.holdback.HoldbackBuffer` in front of a fresh
  monitor.  Because the injector only defers events past their causal
  successors and the buffer releases ready events in arrival order, the
  repaired stream is the *exact* original linearization, so the run
  passes iff the subset signature equals the oracle's and nothing is
  left pending.
* **drop** — unrepairable; the run passes iff the loss is *detected*:
  every dropped event shows up in the buffer's missing-predecessor
  report and the buffer ends stalled (or the plan injected nothing, in
  which case the oracle equality must hold).
* **crash** — the monitor is cut off at the seeded crash point, its
  checkpoint round-tripped through JSON, restored into a fresh monitor,
  and the recorded stream replayed; the run passes iff the recovered
  subset signature equals the oracle's.

Every cell is deterministic per ``(plan, seed)``; the ``ocep chaos``
subcommand and the CI chaos job run the standard matrix over seeds
``0..9``.

With ``shedding=True`` the matrix additionally runs every *repairable*
plan through a pipeline that also sheds load (a pre-engaged
:class:`~repro.resilience.overload.LoadShedder` behind the hold-back
buffer).  Because hold-back repair restores the exact original
linearization before the shedder sees it, the shedder must drop the
*same* events as in a fault-free shedding run — the ``shed+<kind>``
cell passes iff the kept-event ids, the subset signature, and a fresh
gap-tolerant replay over the kept events all agree with the fault-free
shedding baseline.
"""

from __future__ import annotations

import dataclasses
import json
from typing import List, Optional, Sequence, Tuple

from repro.core.monitor import Monitor
from repro.events.event import Event
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import NULL_TRACER, SpanTracer
from repro.resilience.faults import FaultPlan

#: The standard matrix: one plan per fault kind.
DEFAULT_PLANS: Tuple[FaultPlan, ...] = (
    FaultPlan(kind="none"),
    FaultPlan.reorder(),
    FaultPlan.delay(),
    FaultPlan.duplicate(),
    FaultPlan.drop(),
    FaultPlan.crash(),
)

#: Default arrivals-without-release watermark for stall detection.
DEFAULT_STALL_WATERMARK = 32


@dataclasses.dataclass
class ChaosRun:
    """Outcome of one (plan, seed) cell."""

    kind: str
    seed: int
    ok: bool
    detail: str
    subset_size: int
    oracle_size: int
    injected: int
    stalled: bool
    pending: int

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class ChaosReport:
    """All cells of one matrix run, plus the oracle's vitals."""

    num_events: int
    num_traces: int
    oracle_subset_size: int
    oracle_matches: int
    runs: List[ChaosRun] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(run.ok for run in self.runs)

    def failures(self) -> List[ChaosRun]:
        return [run for run in self.runs if not run.ok]

    def to_dict(self) -> dict:
        return {
            "num_events": self.num_events,
            "num_traces": self.num_traces,
            "oracle_subset_size": self.oracle_subset_size,
            "oracle_matches": self.oracle_matches,
            "ok": self.ok,
            "runs": [run.to_dict() for run in self.runs],
        }

    def summary(self) -> str:
        """Human-readable per-cell table."""
        lines = [
            f"oracle: {self.num_events} events, {self.num_traces} traces, "
            f"subset {self.oracle_subset_size} "
            f"({self.oracle_matches} matches reported)"
        ]
        for run in self.runs:
            status = "ok  " if run.ok else "FAIL"
            lines.append(
                f"  {status} {run.kind:<9} seed={run.seed:<3} "
                f"injected={run.injected:<3} subset={run.subset_size} "
                f"{run.detail}"
            )
        counts = f"{sum(r.ok for r in self.runs)}/{len(self.runs)} cells passed"
        lines.append(counts)
        return "\n".join(lines)


def _cell_pipeline(
    events: Sequence[Event],
    pattern_source: str,
    trace_names: Sequence[str],
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[SpanTracer] = None,
):
    """A replay pipeline with one fresh shard watching the pattern;
    returns ``(pipeline, monitor)``."""
    from repro.engine.pipeline import Pipeline

    pipeline = Pipeline.replay(
        events, trace_names, registry=registry, tracer=tracer
    )
    monitor = pipeline.watch("chaos", pattern_source, record_timings=False)
    return pipeline, monitor


def _run_oracle(
    events: Sequence[Event],
    pattern_source: str,
    trace_names: Sequence[str],
) -> Monitor:
    pipeline, monitor = _cell_pipeline(events, pattern_source, trace_names)
    pipeline.run()
    return monitor


def _run_repairable(
    plan: FaultPlan,
    seed: int,
    events: Sequence[Event],
    pattern_source: str,
    trace_names: Sequence[str],
    oracle_signature,
    stall_watermark: int,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[SpanTracer] = None,
) -> ChaosRun:
    """reorder / delay / duplicate / none: repair must be exact."""
    pipeline, monitor = _cell_pipeline(
        events, pattern_source, trace_names, registry=registry, tracer=tracer
    )
    pipeline.with_faults(plan, seed=seed)
    pipeline.with_holdback(stall_watermark=stall_watermark)
    result = pipeline.run()
    injector, buffer = result.injector, result.holdback
    leftover = result.leftover

    injected = (
        injector.delayed_total
        + injector.duplicated_total
        + injector.dropped_total
    )
    signature = monitor.subset.signature()
    if leftover:
        ok, detail = False, f"{len(leftover)} events stuck in hold-back"
    elif signature != oracle_signature:
        ok, detail = False, "subset differs from fault-free oracle"
    else:
        ok, detail = True, "subset identical to oracle"
    return ChaosRun(
        kind=plan.kind,
        seed=seed,
        ok=ok,
        detail=detail,
        subset_size=len(monitor.subset),
        oracle_size=_sig_len(oracle_signature),
        injected=injected,
        stalled=buffer.stalled,
        pending=len(leftover),
    )


def _run_drop(
    plan: FaultPlan,
    seed: int,
    events: Sequence[Event],
    pattern_source: str,
    trace_names: Sequence[str],
    oracle_signature,
    stall_watermark: int,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[SpanTracer] = None,
) -> ChaosRun:
    """drop: the loss must be *detected*, not repaired."""
    pipeline, monitor = _cell_pipeline(
        events, pattern_source, trace_names, registry=registry, tracer=tracer
    )
    pipeline.with_faults(plan, seed=seed)
    pipeline.with_holdback(stall_watermark=stall_watermark)
    result = pipeline.run()
    injector, buffer = result.injector, result.holdback
    leftover = result.leftover

    if injector.dropped_total == 0:
        signature = monitor.subset.signature()
        ok = not leftover and signature == oracle_signature
        detail = (
            "no drop injected; subset identical to oracle"
            if ok
            else "no drop injected but stream not restored"
        )
    else:
        missing = {(mid.trace, mid.index) for mid in buffer.missing_predecessors()}
        dropped = {(did.trace, did.index) for did in injector.dropped_ids}
        reported = dropped <= missing
        detected = buffer.stalled or bool(leftover)
        ok = reported and detected
        if ok:
            detail = (
                f"drop of {sorted(dropped)} detected "
                f"(stalled={buffer.stalled}, {len(leftover)} held)"
            )
        elif not reported:
            detail = f"dropped {sorted(dropped)} not in missing report {sorted(missing)}"
        else:
            detail = "drop injected but no stall detected"
    return ChaosRun(
        kind=plan.kind,
        seed=seed,
        ok=ok,
        detail=detail,
        subset_size=len(monitor.subset),
        oracle_size=_sig_len(oracle_signature),
        injected=injector.dropped_total,
        stalled=buffer.stalled,
        pending=len(leftover),
    )


def _run_crash(
    plan: FaultPlan,
    seed: int,
    events: Sequence[Event],
    pattern_source: str,
    trace_names: Sequence[str],
    oracle_signature,
) -> ChaosRun:
    """crash: checkpoint at the seeded point, restore, replay, converge."""
    crash_at = plan.crash_point(len(events), seed)
    first_pipeline, first = _cell_pipeline(
        events[:crash_at], pattern_source, trace_names
    )
    first_pipeline.run()
    # The JSON round trip is part of the contract: what survives a real
    # process crash is the serialized snapshot, not live objects.
    state = json.loads(json.dumps(first.checkpoint()))

    # Resume *through the pipeline*: the restored shard skips the
    # already-delivered prefix, so the full stream is simply re-fed.
    recovered_pipeline, recovered = _cell_pipeline(
        events, pattern_source, trace_names
    )
    recovered_pipeline.restore(state)
    recovered_pipeline.run()
    replayed = recovered.matcher.events_processed - crash_at

    signature = recovered.subset.signature()
    ok = signature == oracle_signature
    detail = (
        f"crashed@{crash_at}, replayed {replayed}, "
        + ("subset identical to oracle" if ok else "subset differs from oracle")
    )
    return ChaosRun(
        kind=plan.kind,
        seed=seed,
        ok=ok,
        detail=detail,
        subset_size=len(recovered.subset),
        oracle_size=_sig_len(oracle_signature),
        injected=1,
        stalled=False,
        pending=0,
    )


#: Drop-rate budget of the shed-under-faults cells (matches the middle
#: of the recall sweep's rate grid).
SHED_CELL_RATE = 0.2


def _shed_cell_pipeline(
    events: Sequence[Event],
    pattern_source: str,
    trace_names: Sequence[str],
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[SpanTracer] = None,
):
    """A replay pipeline with a pre-engaged shedder in front of one
    fresh shard; returns ``(pipeline, monitor)``."""
    from repro.engine.pipeline import Pipeline
    from repro.resilience.overload import BAND_STRUCTURAL
    from repro.resilience.shedding import forced_shedding_detector

    pipeline = Pipeline.replay(
        events, trace_names, registry=registry, tracer=tracer
    )
    pipeline.with_overload_control(
        detector=forced_shedding_detector(),
        shed_band=BAND_STRUCTURAL,
        max_drop_rate=SHED_CELL_RATE,
        record_kept=True,
    )
    monitor = pipeline.watch("chaos", pattern_source, record_timings=False)
    return pipeline, monitor


def _run_shed_under_faults(
    plan: FaultPlan,
    seed: int,
    events: Sequence[Event],
    pattern_source: str,
    trace_names: Sequence[str],
    shed_signature,
    shed_kept_ids: Sequence[Tuple[int, int]],
    stall_watermark: int,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[SpanTracer] = None,
) -> ChaosRun:
    """repairable plan + shedding: repair must be invisible to the
    shedder (identical drops, identical subset) and the survivors must
    converge with a fresh gap-tolerant replay of the kept events."""
    from repro.resilience.shedding import replay_gapped_monitor

    pipeline, monitor = _shed_cell_pipeline(
        events, pattern_source, trace_names, registry=registry, tracer=tracer
    )
    pipeline.with_faults(plan, seed=seed)
    pipeline.with_holdback(stall_watermark=stall_watermark)
    result = pipeline.run()
    injector, buffer, shedder = result.injector, result.holdback, result.shedder
    leftover = result.leftover

    injected = (
        injector.delayed_total
        + injector.duplicated_total
        + injector.dropped_total
    )
    kept_ids = [(e.trace, e.index) for e in shedder.kept_events]
    reference = replay_gapped_monitor(
        shedder.kept_events, pattern_source, trace_names
    )
    if leftover:
        ok, detail = False, f"{len(leftover)} events stuck in hold-back"
    elif kept_ids != list(shed_kept_ids):
        ok, detail = False, "shed different events than fault-free baseline"
    elif monitor.subset.signature() != shed_signature:
        ok, detail = False, "subset differs from fault-free shedding baseline"
    elif (
        reference.subset.signature() != monitor.subset.signature()
        or reference.reports != monitor.reports
    ):
        ok, detail = False, "kept-events replay diverged from shedded pipeline"
    else:
        ok, detail = True, (
            f"shed {shedder.shed_total}/{shedder.offered_total} "
            "identically to fault-free baseline"
        )
    return ChaosRun(
        kind=f"shed+{plan.kind}",
        seed=seed,
        ok=ok,
        detail=detail,
        subset_size=len(monitor.subset),
        oracle_size=_sig_len(shed_signature),
        injected=injected,
        stalled=buffer.stalled,
        pending=len(leftover),
    )


def _sig_len(signature) -> int:
    return len(signature)


def run_fault_matrix(
    events: Sequence[Event],
    pattern_source: str,
    trace_names: Sequence[str],
    plans: Optional[Sequence[FaultPlan]] = None,
    seeds: Sequence[int] = range(10),
    stall_watermark: int = DEFAULT_STALL_WATERMARK,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[SpanTracer] = None,
    shedding: bool = False,
) -> ChaosReport:
    """Run every (plan, seed) cell over one recorded stream.

    ``events`` must be a valid linearization (the oracle asserts this
    implicitly: the monitor's causal index rejects out-of-order input).
    ``registry`` and ``tracer`` are shared across cells: fault
    injectors and hold-back buffers report into them (injection
    counters labelled by kind; per-cell ``chaos.cell`` spans).

    With ``shedding=True``, every repairable plan is additionally run
    through a shedding pipeline as a ``shed+<kind>`` cell checked
    against a fault-free shedding baseline (see module docstring).
    """
    if not events:
        raise ValueError("chaos matrix needs a non-empty event stream")
    span_tracer = tracer if tracer is not None else NULL_TRACER
    oracle = _run_oracle(events, pattern_source, trace_names)
    oracle_signature = oracle.subset.signature()
    report = ChaosReport(
        num_events=len(events),
        num_traces=len(trace_names),
        oracle_subset_size=len(oracle.subset),
        oracle_matches=len(oracle.reports),
    )
    selected = list(plans) if plans is not None else list(DEFAULT_PLANS)
    for plan in selected:
        for seed in seeds:
            with span_tracer.span(
                "chaos.cell",
                track="chaos",
                args={"kind": plan.kind, "seed": seed},
            ):
                if plan.kind == "crash":
                    run = _run_crash(
                        plan, seed, events, pattern_source, trace_names,
                        oracle_signature,
                    )
                elif plan.kind == "drop":
                    run = _run_drop(
                        plan, seed, events, pattern_source, trace_names,
                        oracle_signature, stall_watermark,
                        registry=registry, tracer=tracer,
                    )
                else:
                    run = _run_repairable(
                        plan, seed, events, pattern_source, trace_names,
                        oracle_signature, stall_watermark,
                        registry=registry, tracer=tracer,
                    )
            report.runs.append(run)
    if shedding:
        # Fault-free shedding baseline: what a deterministic shedder
        # drops when the stream needs no repair.
        baseline_pipeline, baseline = _shed_cell_pipeline(
            events, pattern_source, trace_names
        )
        baseline_result = baseline_pipeline.run()
        shed_signature = baseline.subset.signature()
        shed_kept_ids = [
            (e.trace, e.index)
            for e in baseline_result.shedder.kept_events
        ]
        repairable = [
            plan for plan in selected
            if plan.kind not in ("crash", "drop")
        ]
        for plan in repairable:
            for seed in seeds:
                with span_tracer.span(
                    "chaos.cell",
                    track="chaos",
                    args={"kind": f"shed+{plan.kind}", "seed": seed},
                ):
                    run = _run_shed_under_faults(
                        plan, seed, events, pattern_source, trace_names,
                        shed_signature, shed_kept_ids, stall_watermark,
                        registry=registry, tracer=tracer,
                    )
                report.runs.append(run)
    return report


__all__ = [
    "DEFAULT_PLANS",
    "DEFAULT_STALL_WATERMARK",
    "SHED_CELL_RATE",
    "ChaosRun",
    "ChaosReport",
    "run_fault_matrix",
]
