"""POET client interface.

A client connects to the POET server "in a way that it receives the
arriving events in a linearization of the partial order" (paper,
Section V-A).  OCEP's online monitor is one such client; tests and
benchmarks use the small concrete clients here.
"""

from __future__ import annotations

import abc
from typing import Callable, List

from repro.events.event import Event


class POETClient(abc.ABC):
    """Interface for consumers of the POET event stream."""

    @abc.abstractmethod
    def on_event(self, event: Event) -> None:
        """Handle the next event of the linearization."""


class CallbackClient(POETClient):
    """Adapts a plain callable to the client interface."""

    def __init__(self, callback: Callable[[Event], None]):
        self._callback = callback

    def on_event(self, event: Event) -> None:
        self._callback(event)


class RecordingClient(POETClient):
    """Stores every delivered event, in delivery order (for tests)."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def on_event(self, event: Event) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)
