"""POET client interface.

A client connects to the POET server "in a way that it receives the
arriving events in a linearization of the partial order" (paper,
Section V-A).  OCEP's online monitor is one such client; tests and
benchmarks use the small concrete clients here.
"""

from __future__ import annotations

import abc
from typing import Callable, List, Sequence

from repro.events.event import Event


class POETClient(abc.ABC):
    """Interface for consumers of the POET event stream."""

    @abc.abstractmethod
    def on_event(self, event: Event) -> None:
        """Handle the next event of the linearization."""

    def on_batch(self, events: Sequence[Event]) -> None:
        """Handle a contiguous slice of the linearization.

        The default simply loops :meth:`on_event`, so every client is
        batch-capable; clients with per-event dispatch overhead worth
        amortizing (the :class:`~repro.core.monitor.Monitor`, the
        :class:`~repro.engine.ShardedDispatcher`) override it.  A batch
        must be delivered in order and must produce exactly the same
        observable behaviour as delivering its events one at a time.
        """
        on_event = self.on_event
        for event in events:
            on_event(event)


class CallbackClient(POETClient):
    """Adapts a plain callable to the client interface."""

    def __init__(self, callback: Callable[[Event], None]):
        self._callback = callback

    def on_event(self, event: Event) -> None:
        self._callback(event)


class RecordingClient(POETClient):
    """Stores every delivered event, in delivery order (for tests)."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def on_event(self, event: Event) -> None:
        self.events.append(event)

    def on_batch(self, events: Sequence[Event]) -> None:
        self.events.extend(events)

    def __len__(self) -> int:
        return len(self.events)
