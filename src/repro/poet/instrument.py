"""Attaching POET to a target environment.

In the paper, POET collects events from instrumented μC++/MPI binaries
through environment-specific plugins.  Here the target environment is
the simulation kernel; *instrumenting* it means wiring the kernel's
event sink into a POET server, which then fans events out to any
connected clients (the OCEP monitor, recorders, dump writers).
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracer
from repro.poet.server import POETServer
from repro.simulation.kernel import Kernel


def instrument(
    kernel: Kernel,
    verify: bool = False,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[SpanTracer] = None,
    event_store: Optional[str] = None,
) -> POETServer:
    """Create a POET server wired to a simulation kernel.

    Every event the kernel emits flows into the server (and on to its
    clients) in linearization order.  Connect clients *before* calling
    :meth:`Kernel.run`, or they will miss the prefix.  ``registry``
    forwards to :class:`POETServer` for delivery accounting; ``tracer``
    is installed on both the kernel (simulated-time tracks and
    happens-before flows) and the server (delivery spans).

    ``event_store`` picks the server-side store layout; when omitted,
    kernels with encoded timestamps get the struct-of-arrays store
    (whose appends are O(1) for encoded clocks) and full-clock kernels
    keep the object store.
    """
    if event_store is None:
        event_store = "array" if kernel.clock_backend == "encoded" else "object"
    server = POETServer(
        num_traces=kernel.num_traces,
        trace_names=kernel.trace_names(),
        verify=verify,
        registry=registry,
        tracer=tracer,
        event_store=event_store,
    )
    if tracer is not None:
        kernel.set_tracer(tracer)
    kernel.add_sink(server.collect)
    return server
