"""Linearizations of the event partial order.

A linearization of a partial order ``->`` on a set ``X`` is a sequence
containing each element of ``X`` once such that any ``x`` occurs before
``x'`` whenever ``x -> x'`` (paper, Section V-A).  The POET server
delivers events to clients in such an order; this module both builds
linearizations from stored events (for dump replay) and verifies that a
given delivery order is causally consistent (used by the server's debug
mode and the test suite).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.events.event import Event


def linearize(events: Iterable[Event]) -> List[Event]:
    """Order events causally using their Lamport timestamps.

    Lamport clocks are consistent with happens-before (``a -> b``
    implies ``L(a) < L(b)``), so sorting by ``(lamport, trace, index)``
    yields a valid linearization, with the trace/index components only
    breaking ties between concurrent events deterministically.
    """
    return sorted(events, key=lambda e: (e.lamport, e.trace, e.index))


def is_linearization(events: Sequence[Event], num_traces: int) -> bool:
    """Check that a delivery order is a linearization of happens-before.

    The check is incremental and linear in the total clock width: an
    event ``e`` on trace ``t`` with clock ``V`` may be delivered only
    when exactly ``V[t] - 1`` events of trace ``t`` and at least
    ``V[m]`` events of every other trace ``m`` have been delivered —
    i.e. all its causal predecessors are already in the prefix.
    """
    delivered = [0] * num_traces
    for event in events:
        clock = event.clock
        if len(clock) != num_traces:
            return False
        if delivered[event.trace] != clock[event.trace] - 1:
            return False
        for trace in range(num_traces):
            if trace != event.trace and clock[trace] > delivered[trace]:
                return False
        delivered[event.trace] += 1
    return True
