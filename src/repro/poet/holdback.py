"""Causal hold-back buffer: fault-tolerant event delivery.

The POET substrate promises its clients "the arriving events in a
linearization of the partial order" (paper, Section V-A).  The server's
``verify=True`` mode *asserts* that promise and kills the pipeline on
the first late, duplicated, or dropped event.  This module *repairs*
the stream instead, the way real causal-order delivery layers do: an
arriving event is released to the downstream sink only once all of its
vector-clock predecessors have been released, and is otherwise held
back.

Release rule (the same counting argument as
:func:`repro.poet.linearize.is_linearization`): an event ``e`` on trace
``t`` with clock ``V`` is *ready* when exactly ``V[t] - 1`` events of
trace ``t`` and at least ``V[m]`` events of every other trace ``m``
have been released.  Among simultaneously ready events the buffer
releases in arrival order, so a stream perturbed only by holding
events back past their causal successors (the
:class:`repro.resilience.faults.FaultInjector` reorder/delay faults)
is restored to the *exact* original linearization — which is what lets
the chaos harness demand bit-identical representative subsets.

Failure handling:

* **Duplicates** are suppressed by per-trace released counts (an event
  whose position is already released, or already pending, is absorbed
  and counted).
* **Gaps** (a dropped predecessor) cannot be repaired; they are
  *detected* instead: when the oldest held event has waited more than
  ``stall_watermark`` arrivals without any release, the buffer marks
  itself stalled and :meth:`missing_predecessors` names the exact
  (trace, index) holes.
* **Overflow**: the buffer is bounded by ``capacity`` with an explicit
  policy — ``"raise"`` (default; fail loudly), ``"shed"`` (drop the
  arriving event, surfacing later as a stall), or ``"block"``
  (:meth:`offer` returns ``False`` and the caller must retry later —
  backpressure for pull-style sources; as a push-style
  :class:`~repro.poet.client.POETClient` this degenerates to raising,
  since ``on_event`` cannot refuse).

Instrumentation flows through the standard
:class:`~repro.obs.metrics.MetricsRegistry`: a held-back depth gauge
plus released / reordered / duplicate / shed / stall counters.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.events.event import Event, EventId
from repro.obs.log import get_logger
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.spans import NULL_TRACER, SpanTracer
from repro.poet.client import POETClient

_log = get_logger("poet.holdback")

#: Overflow policies for a full buffer.
OVERFLOW_POLICIES = ("raise", "shed", "block")


class _Held:
    """One held-back event plus its arrival sequence number (slotted:
    a faulty burst can hold thousands of these at once).  ``band``
    caches the utility score, computed lazily on the first overflow."""

    __slots__ = ("event", "arrived_at", "band")

    def __init__(self, event: Event, arrived_at: int):
        self.event = event
        self.arrived_at = arrived_at
        self.band: Optional[int] = None


class HoldbackOverflowError(RuntimeError):
    """The hold-back buffer hit capacity under the ``raise`` policy."""


class HoldbackStallError(RuntimeError):
    """Held-back events can never be released (dropped predecessor)."""


class HoldbackBuffer(POETClient):
    """Re-linearizes an out-of-order event stream for one consumer.

    Parameters
    ----------
    num_traces:
        Clock width of the monitored computation.
    sink:
        Callable receiving each released event, in causal order (e.g.
        ``monitor.on_event``).
    capacity:
        Maximum events held back at once (``None`` = unbounded).
    overflow:
        Policy when an arrival would exceed ``capacity``; one of
        :data:`OVERFLOW_POLICIES`.
    stall_watermark:
        Arrivals the oldest held event may wait through without any
        release before the buffer declares a stall (``None`` disables
        detection).
    raise_on_stall:
        When true, a detected stall raises :class:`HoldbackStallError`
        from :meth:`offer` instead of only being recorded.
    utility_scorer:
        Optional :class:`~repro.resilience.overload.EventUtilityScorer`.
        When set, the ``shed`` overflow policy becomes pattern-aware:
        instead of always dropping the arriving event, it evicts the
        *least useful* one — lowest utility band first, newest arrival
        among ties (evicting the oldest would re-order survivors) —
        considering both the pending entries and the arrival.  Without
        a scorer the historical behaviour (drop the arrival) is kept.
    registry:
        Optional metrics registry; defaults to the shared no-op one.
        The shed counter is labelled ``reason="overflow"`` — the load
        shedder reports into the same series with
        ``reason="overload"``, so ``ocep stats`` tells the two apart.
    tracer:
        Optional span tracer; when enabled, held-back arrivals,
        suppressed duplicates, sheds, and stalls become instant
        annotations, and repair drains become ``holdback.repair``
        spans on the buffer's wall-clock track.
    """

    def __init__(
        self,
        num_traces: int,
        sink: Callable[[Event], None],
        capacity: Optional[int] = None,
        overflow: str = "raise",
        stall_watermark: Optional[int] = None,
        raise_on_stall: bool = False,
        utility_scorer=None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
    ):
        if num_traces <= 0:
            raise ValueError(f"need at least one trace, got {num_traces}")
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"overflow must be one of {OVERFLOW_POLICIES}, got {overflow!r}"
            )
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.num_traces = num_traces
        self._sink = sink
        self._capacity = capacity
        self._overflow = overflow
        self._stall_watermark = stall_watermark
        self._raise_on_stall = raise_on_stall
        self._utility_scorer = utility_scorer

        self._released = [0] * num_traces
        #: Held entries (event + arrival sequence number) keyed by
        #: identity, in arrival (insertion) order.
        self._pending: Dict[Tuple[int, int], _Held] = {}
        self._offers = 0
        self.stalled = False
        # Plain-int mirrors of the registry counters, so stats() works
        # (and costs nothing) under the no-op registry too.
        self.released_total = 0
        self.reordered_total = 0
        self.duplicates_total = 0
        self.shed_total = 0
        self.stalls_total = 0

        self._tracer = tracer if tracer is not None else NULL_TRACER
        self.registry = registry if registry is not None else NULL_REGISTRY
        self._depth_gauge = self.registry.gauge(
            "poet_holdback_pending_events", "events currently held back",
            alias="poet_holdback_pending",
        )
        self._released_counter = self.registry.counter(
            "poet_holdback_released_total", "events released downstream"
        )
        self._reordered_counter = self.registry.counter(
            "poet_holdback_reordered_total",
            "arrivals held back because a predecessor was missing",
        )
        self._duplicates_counter = self.registry.counter(
            "poet_holdback_duplicates_total", "duplicate arrivals suppressed"
        )
        self._shed_counter = self.registry.counter(
            "poet_holdback_shed_total",
            "arrivals dropped by the shed policy",
            labels={"reason": "overflow"},
        )
        self._stalls_counter = self.registry.counter(
            "poet_holdback_stalls_total", "stall episodes detected"
        )

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def on_event(self, event: Event) -> None:
        """POET client hook: like :meth:`offer`, but a ``block`` refusal
        has nowhere to go in push delivery, so it raises."""
        if not self.offer(event):
            raise HoldbackOverflowError(
                f"hold-back buffer full ({self._capacity}) and the block "
                "policy cannot backpressure a push-style delivery"
            )

    def offer(self, event: Event) -> bool:
        """Accept the next arrival; returns False only when the buffer
        is full under the ``block`` policy (caller should retry after
        offering the missing predecessors)."""
        if len(event.clock) != self.num_traces:
            raise ValueError(
                f"event {event.event_id} clock width {len(event.clock)} "
                f"does not match buffer width {self.num_traces}"
            )
        self._offers += 1
        key = (event.trace, event.index)
        if event.index <= self._released[event.trace] or key in self._pending:
            self.duplicates_total += 1
            self._duplicates_counter.inc()
            if self._tracer.enabled:
                self._tracer.instant(
                    "holdback.duplicate",
                    track="poet.holdback",
                    args={"event": repr(event.event_id)},
                )
            self._check_stall()
            return True

        if self._ready(event):
            self._release(event)
            self._drain()
        else:
            if (
                self._capacity is not None
                and len(self._pending) >= self._capacity
            ):
                if self._overflow == "raise":
                    raise HoldbackOverflowError(
                        f"hold-back buffer full ({self._capacity} events) "
                        f"while offering {event.event_id}; missing "
                        f"predecessors: {self.missing_predecessors()[:5]}"
                    )
                if self._overflow == "block":
                    return False
                # shed: something is lost and its successors will
                # stall — the loud failure this policy trades for
                # bounded memory.  With a utility scorer the victim is
                # the least useful of (pending + arrival): lowest band
                # first, newest arrival among ties.  Without one, the
                # arrival (the historical behaviour).
                victim_key = self._shed_victim(event)
                self.shed_total += 1
                self._shed_counter.inc()
                if victim_key is None:
                    if self._tracer.enabled:
                        self._tracer.instant(
                            "holdback.shed",
                            track="poet.holdback",
                            args={"event": repr(event.event_id)},
                        )
                    self._check_stall()
                    return True
                victim = self._pending.pop(victim_key)
                if self._tracer.enabled:
                    self._tracer.instant(
                        "holdback.shed",
                        track="poet.holdback",
                        args={"event": repr(victim.event.event_id),
                              "displaced_by": repr(event.event_id)},
                    )
                # The freed slot holds the (more useful) arrival.
            self._pending[key] = _Held(event, self._offers)
            self.reordered_total += 1
            self._reordered_counter.inc()
            self._depth_gauge.set(len(self._pending))
            if self._tracer.enabled:
                self._tracer.instant(
                    "holdback.hold",
                    track="poet.holdback",
                    args={"event": repr(event.event_id),
                          "pending": len(self._pending)},
                )
        self._check_stall()
        return True

    def _shed_victim(self, event: Event) -> Optional[Tuple[int, int]]:
        """Pick the overflow victim: ``None`` means the arriving event
        itself; otherwise the key of the pending entry to evict."""
        scorer = self._utility_scorer
        if scorer is None:
            return None
        victim_key: Optional[Tuple[int, int]] = None
        # The arrival is by definition the newest (arrived_at ==
        # self._offers), so ties on band fall on it.
        victim_rank = (scorer.score(event), -self._offers)
        for key, held in self._pending.items():
            if held.band is None:
                held.band = scorer.score(held.event)
            rank = (held.band, -held.arrived_at)
            if rank < victim_rank:
                victim_key, victim_rank = key, rank
        return victim_key

    def flush(self) -> List[Event]:
        """Final drain attempt; returns events still held back (empty
        for a fault-free or fully repaired stream)."""
        self._drain()
        return [held.event for held in self._pending.values()]

    # ------------------------------------------------------------------
    # Release machinery
    # ------------------------------------------------------------------

    def _ready(self, event: Event) -> bool:
        released = self._released
        if released[event.trace] != event.index - 1:
            return False
        clock = event.clock
        for trace in range(self.num_traces):
            if trace != event.trace and clock[trace] > released[trace]:
                return False
        return True

    def _release(self, event: Event) -> None:
        self._released[event.trace] += 1
        self.released_total += 1
        self._released_counter.inc()
        self.stalled = False
        self._sink(event)

    def _drain(self) -> None:
        """Release pending events until none is ready.  Among ready
        events the earliest arrival goes first, which restores the
        original linearization when faults only deferred events past
        their causal successors."""
        if self._tracer.enabled and self._pending:
            with self._tracer.span(
                "holdback.repair",
                track="poet.holdback",
                args={"pending": len(self._pending)},
            ):
                self._drain_loop()
        else:
            self._drain_loop()
        self._depth_gauge.set(len(self._pending))

    def _drain_loop(self) -> None:
        progress = True
        while progress and self._pending:
            progress = False
            for key, held in self._pending.items():
                if self._ready(held.event):
                    del self._pending[key]
                    self._release(held.event)
                    progress = True
                    break

    # ------------------------------------------------------------------
    # Stall detection
    # ------------------------------------------------------------------

    def _check_stall(self) -> None:
        if self._stall_watermark is None or not self._pending:
            return
        oldest = next(iter(self._pending.values())).arrived_at
        if self._offers - oldest < self._stall_watermark:
            return
        if not self.stalled:
            self.stalled = True
            self.stalls_total += 1
            self._stalls_counter.inc()
            missing = self.missing_predecessors()
            _log.warning(
                "hold-back buffer stalled",
                extra={"pending": len(self._pending),
                       "missing": [repr(eid) for eid in missing[:5]],
                       "missing_total": len(missing)},
            )
            if self._tracer.enabled:
                self._tracer.instant(
                    "holdback.stall",
                    track="poet.holdback",
                    args={"pending": len(self._pending),
                          "missing": len(missing)},
                )
        if self._raise_on_stall:
            raise HoldbackStallError(
                f"{len(self._pending)} events held back for "
                f">{self._stall_watermark} arrivals; missing predecessors: "
                f"{self.missing_predecessors()[:5]}"
            )

    def missing_predecessors(self) -> List[EventId]:
        """The (trace, index) holes blocking every held event: required
        by some pending event's clock, but neither released nor pending
        themselves.  Empty when nothing is held back."""
        missing: Set[Tuple[int, int]] = set()
        for held in self._pending.values():
            event = held.event
            clock = event.clock
            for trace in range(self.num_traces):
                need = event.index - 1 if trace == event.trace else clock[trace]
                for index in range(self._released[trace] + 1, need + 1):
                    if (trace, index) not in self._pending:
                        missing.add((trace, index))
        return [EventId(t, i) for t, i in sorted(missing)]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Events currently held back."""
        return len(self._pending)

    @property
    def released_counts(self) -> List[int]:
        """Per-trace released counts (a copy)."""
        return list(self._released)

    def stats(self) -> Dict[str, int]:
        """Plain-dict snapshot of the buffer's accounting."""
        return {
            "offers": self._offers,
            "pending": len(self._pending),
            "released": self.released_total,
            "reordered": self.reordered_total,
            "duplicates": self.duplicates_total,
            "shed": self.shed_total,
            "stalls": self.stalls_total,
            "stalled": int(self.stalled),
        }

    def __repr__(self) -> str:
        return (
            f"HoldbackBuffer({self.num_traces} traces, "
            f"{len(self._pending)} pending, released={self._released})"
        )
