"""Dump and reload of collected trace-event data.

The paper's evaluation methodology (Section V-B) uses POET's *dump*
feature to save collected trace-event data to a file, then the *reload*
feature to replay the saved events "via the same interface used to
collect events from a running application" — so every matcher run sees
an identical event stream.  The format here is a line of JSON per
record: a header describing the computation, then one line per event in
delivery order.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Sequence, Tuple, Union

from repro.clocks.vector_clock import VectorClock
from repro.events.event import Event, EventId, EventKind
from repro.poet.server import POETServer

_FORMAT = "ocep-poet-dump-v1"

PathLike = Union[str, Path]


def dump_events(
    path: PathLike,
    events: Iterable[Event],
    num_traces: int,
    trace_names: Sequence[str],
) -> int:
    """Write a dump file; returns the number of events written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        header = {
            "format": _FORMAT,
            "num_traces": num_traces,
            "trace_names": list(trace_names),
        }
        fh.write(json.dumps(header) + "\n")
        for event in events:
            fh.write(json.dumps(_event_to_record(event)) + "\n")
            count += 1
    return count


def load_events(path: PathLike) -> Tuple[List[Event], int, List[str]]:
    """Read a dump file; returns ``(events, num_traces, trace_names)``."""
    with open(path, "r", encoding="utf-8") as fh:
        header_line = fh.readline()
        if not header_line:
            raise ValueError(f"{path}: empty dump file")
        header = json.loads(header_line)
        if header.get("format") != _FORMAT:
            raise ValueError(
                f"{path}: unknown dump format {header.get('format')!r}"
            )
        num_traces = int(header["num_traces"])
        trace_names = [str(n) for n in header["trace_names"]]
        events = [_record_to_event(json.loads(line)) for line in fh if line.strip()]
    return events, num_traces, trace_names


def replay(path: PathLike, verify: bool = False) -> POETServer:
    """Reload a dump into a fresh POET server, without clients.

    Callers typically connect their monitor first and then feed the
    events through :meth:`POETServer.collect`; this convenience loads
    and collects in one step for store-oriented uses.
    """
    events, num_traces, trace_names = load_events(path)
    server = POETServer(num_traces, trace_names, verify=verify)
    for event in events:
        server.collect(event)
    return server


def _event_to_record(event: Event) -> dict:
    record = {
        "t": event.trace,
        "i": event.index,
        "y": event.etype,
        "x": event.text,
        "c": list(event.clock.components),
        "k": event.kind.value,
        "l": event.lamport,
    }
    if event.partner is not None:
        record["p"] = [event.partner.trace, event.partner.index]
    return record


def _record_to_event(record: dict) -> Event:
    partner = None
    if "p" in record:
        partner = EventId(trace=record["p"][0], index=record["p"][1])
    return Event(
        trace=record["t"],
        index=record["i"],
        etype=record["y"],
        text=record["x"],
        clock=VectorClock(record["c"]),
        kind=EventKind(record["k"]),
        partner=partner,
        lamport=record["l"],
    )
