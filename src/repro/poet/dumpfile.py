"""Dump and reload of collected trace-event data.

The paper's evaluation methodology (Section V-B) uses POET's *dump*
feature to save collected trace-event data to a file, then the *reload*
feature to replay the saved events "via the same interface used to
collect events from a running application" — so every matcher run sees
an identical event stream.  The format here is a line of JSON per
record: a header describing the computation, then one line per event in
delivery order.

Loading is hardened against corrupt input: any malformed line — broken
JSON, a missing or mistyped field, an inconsistent clock — raises
:class:`DumpFormatError` naming the file, line number, and offending
field instead of leaking a bare ``KeyError``/``IndexError``.  By
default the loader also re-checks that the reloaded sequence still
forms a linearization of the partial order, so a truncated or
hand-edited dump cannot silently feed the matcher a causally broken
stream.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Sequence, Tuple, Union

from repro.events.event import Event, event_from_record
from repro.poet.linearize import is_linearization
from repro.poet.server import POETServer

_FORMAT = "ocep-poet-dump-v1"

PathLike = Union[str, Path]


class DumpFormatError(ValueError):
    """A dump file is corrupt.

    Attributes
    ----------
    path, line:
        Where the problem is (1-based line number; line 1 is the
        header).
    field:
        The offending record field, when one can be named.
    """

    def __init__(self, path, line: int, message: str, field: str = ""):
        self.path = path
        self.line = line
        self.field = field
        where = f"{path}:{line}"
        if field:
            where += f" (field {field!r})"
        super().__init__(f"{where}: {message}")


def dump_events(
    path: PathLike,
    events: Iterable[Event],
    num_traces: int,
    trace_names: Sequence[str],
) -> int:
    """Write a dump file; returns the number of events written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        header = {
            "format": _FORMAT,
            "num_traces": num_traces,
            "trace_names": list(trace_names),
        }
        fh.write(json.dumps(header) + "\n")
        for event in events:
            fh.write(json.dumps(event.to_record()) + "\n")
            count += 1
    return count


def load_events(
    path: PathLike, validate_order: bool = True
) -> Tuple[List[Event], int, List[str]]:
    """Read a dump file; returns ``(events, num_traces, trace_names)``.

    With ``validate_order`` (the default) the reloaded sequence is
    checked to still be a linearization of the partial order; disable
    it only for deliberately partial dumps.
    """
    with open(path, "r", encoding="utf-8") as fh:
        header_line = fh.readline()
        if not header_line:
            raise DumpFormatError(path, 1, "empty dump file")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise DumpFormatError(path, 1, f"unparseable header: {exc}") from exc
        if not isinstance(header, dict):
            raise DumpFormatError(path, 1, "header is not a JSON object")
        if header.get("format") != _FORMAT:
            raise DumpFormatError(
                path, 1, f"unknown dump format {header.get('format')!r}",
                field="format",
            )
        try:
            num_traces = int(header["num_traces"])
            trace_names = [str(n) for n in header["trace_names"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise DumpFormatError(
                path, 1, f"bad header: {exc!r}", field="num_traces/trace_names"
            ) from exc
        if num_traces <= 0 or len(trace_names) != num_traces:
            raise DumpFormatError(
                path, 1,
                f"{len(trace_names)} trace names for {num_traces} traces",
                field="trace_names",
            )

        events: List[Event] = []
        for lineno, line in enumerate(fh, start=2):
            if not line.strip():
                continue
            events.append(_parse_record_line(path, lineno, line, num_traces))

    if validate_order and not is_linearization(events, num_traces):
        raise DumpFormatError(
            path, 0,
            "reloaded events do not form a linearization of the partial "
            "order (truncated or reordered dump?)",
        )
    return events, num_traces, trace_names


def _parse_record_line(
    path: PathLike, lineno: int, line: str, num_traces: int
) -> Event:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise DumpFormatError(path, lineno, f"unparseable record: {exc}") from exc
    if not isinstance(record, dict):
        raise DumpFormatError(path, lineno, "record is not a JSON object")
    event = _record_to_event(record, path=path, line=lineno)
    if len(event.clock) != num_traces:
        raise DumpFormatError(
            path, lineno,
            f"clock width {len(event.clock)} does not match header "
            f"num_traces {num_traces}",
            field="c",
        )
    return event


def replay(path: PathLike, verify: bool = False) -> POETServer:
    """Reload a dump into a fresh POET server, without clients.

    Callers typically connect their monitor first and then feed the
    events through :meth:`POETServer.collect`; this convenience loads
    and collects in one step for store-oriented uses.
    """
    events, num_traces, trace_names = load_events(path)
    server = POETServer(num_traces, trace_names, verify=verify)
    for event in events:
        server.collect(event)
    return server


def _event_to_record(event: Event) -> dict:
    return event.to_record()


def _record_to_event(record: dict, path: PathLike = "<record>", line: int = 0) -> Event:
    try:
        return event_from_record(record)
    except KeyError as exc:
        raise DumpFormatError(
            path, line, "missing record field", field=str(exc.args[0])
        ) from exc
    except (IndexError, TypeError, ValueError) as exc:
        raise DumpFormatError(path, line, f"bad record: {exc}") from exc
