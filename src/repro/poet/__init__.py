"""POET substrate: the Partial-Order Event Tracer stand-in.

POET [21] is the existing tool the paper builds on: a target-system-
independent tracer that collects instrumented events grouped by trace,
stores the partial-order relationships among them, and can deliver
events to a client as a *linearization of the partial order*.  This
package reimplements the slice of POET that OCEP uses:

* :class:`~repro.poet.server.POETServer` — collects events, stores
  them grouped by trace, and forwards them to connected clients in a
  causally consistent order;
* :class:`~repro.poet.client.POETClient` — the client interface OCEP's
  monitor implements;
* :mod:`~repro.poet.linearize` — linearization construction and
  verification;
* :mod:`~repro.poet.dumpfile` — the dump/reload feature used by the
  paper's evaluation methodology (collect once, replay many times);
* :mod:`~repro.poet.holdback` — the causal hold-back buffer repairing
  out-of-order, duplicated, or gapped delivery in front of a client;
* :mod:`~repro.poet.instrument` — attaching a server to a simulated
  target environment.
"""

from repro.poet.server import DeliveryOrderError, POETServer
from repro.poet.client import CallbackClient, POETClient, RecordingClient
from repro.poet.linearize import is_linearization, linearize
from repro.poet.dumpfile import (
    DumpFormatError,
    dump_events,
    load_events,
    replay,
)
from repro.poet.holdback import (
    HoldbackBuffer,
    HoldbackOverflowError,
    HoldbackStallError,
)
from repro.poet.instrument import instrument

__all__ = [
    "POETServer",
    "DeliveryOrderError",
    "POETClient",
    "CallbackClient",
    "RecordingClient",
    "linearize",
    "is_linearization",
    "DumpFormatError",
    "dump_events",
    "load_events",
    "replay",
    "HoldbackBuffer",
    "HoldbackOverflowError",
    "HoldbackStallError",
    "instrument",
]
