"""POET server: event collection and causally consistent delivery.

The server owns the :class:`~repro.events.store.EventStore` ("a set of
events grouped by traces", paper Section V-A) and fans every collected
event out to connected clients.  The collection order produced by the
simulation substrate is already a linearization; with ``verify=True``
the server asserts this invariant on every event, which the test suite
uses to guard the whole pipeline.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.events.event import Event
from repro.events.soa import make_event_store
from repro.obs.log import get_logger
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.spans import NULL_TRACER, SpanTracer
from repro.poet.client import POETClient

_log = get_logger("poet.server")


class DeliveryOrderError(RuntimeError):
    """The event source violated causal delivery order."""


class POETServer:
    """Collects instrumented events and streams them to clients.

    Parameters
    ----------
    num_traces:
        Number of traces in the monitored computation.
    trace_names:
        Optional human-readable trace names.
    verify:
        When true, check on every collected event that delivery remains
        a linearization of the partial order (all causal predecessors
        already delivered).  Costs O(num_traces) per event.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` receiving
        collection/delivery counters and a connected-clients gauge.
        Defaults to the no-op registry.
    tracer:
        Optional :class:`~repro.obs.spans.SpanTracer`; when enabled,
        each collected event's fan-out is recorded as a
        ``poet.deliver`` span on the server's wall-clock track.
        Defaults to the no-op tracer.
    event_store:
        Server-side store layout: ``"object"`` (one ``Event`` per
        collected event, the historical default) or ``"array"`` (the
        struct-of-arrays :class:`~repro.events.soa.ArrayEventStore`,
        whose appends cost O(1) for encoded clocks).
    """

    def __init__(
        self,
        num_traces: int,
        trace_names: Optional[Sequence[str]] = None,
        verify: bool = False,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
        event_store: str = "object",
    ):
        self.store = make_event_store(event_store, num_traces, trace_names)
        self._clients: List[POETClient] = []
        self._verify = verify
        self._delivered = [0] * num_traces
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self.registry = registry if registry is not None else NULL_REGISTRY
        self._collected_counter = self.registry.counter(
            "poet_events_collected_total", "events ingested by the server"
        )
        self._deliveries_counter = self.registry.counter(
            "poet_deliveries_total",
            "event deliveries fanned out (events x clients)",
        )
        self._errors_counter = self.registry.counter(
            "poet_delivery_errors_total",
            "client on_event callbacks that raised",
        )
        self._clients_gauge = self.registry.gauge(
            "poet_clients", "currently connected clients"
        )
        #: Client callbacks that raised (plain-int mirror of the
        #: registry counter, live even under the no-op registry).
        self.delivery_errors = 0

    def use_registry(self, registry: MetricsRegistry) -> None:
        """Rebind delivery accounting to ``registry`` (e.g. when the
        server was built before observability was requested).  Counts
        start from zero in the new registry."""
        self.registry = registry
        self._collected_counter = registry.counter(
            "poet_events_collected_total", "events ingested by the server"
        )
        self._deliveries_counter = registry.counter(
            "poet_deliveries_total",
            "event deliveries fanned out (events x clients)",
        )
        self._errors_counter = registry.counter(
            "poet_delivery_errors_total",
            "client on_event callbacks that raised",
        )
        self._clients_gauge = registry.gauge(
            "poet_clients", "currently connected clients"
        )
        self._clients_gauge.set(len(self._clients))

    def use_tracer(self, tracer: Optional[SpanTracer]) -> None:
        """Rebind span tracing to ``tracer`` (``None`` disables)."""
        self._tracer = tracer if tracer is not None else NULL_TRACER

    # ------------------------------------------------------------------
    # Client management
    # ------------------------------------------------------------------

    def connect(self, client: POETClient) -> None:
        """Attach a client; it will see every event from now on."""
        self._clients.append(client)
        self._clients_gauge.set(len(self._clients))

    def disconnect(self, client: POETClient) -> None:
        """Detach a previously connected client."""
        self._clients.remove(client)
        self._clients_gauge.set(len(self._clients))

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------

    def collect(self, event: Event) -> None:
        """Ingest the next event: store it and deliver it to clients.

        A client raising in ``on_event`` does not corrupt the server's
        accounting: the event is stored and counted exactly once, every
        *other* client still receives it, each successful delivery is
        counted individually, the failure lands in
        ``delivery_errors``/``poet_delivery_errors_total``, and the
        first error is re-raised once fan-out has completed.  (A client
        that should survive its own failures — e.g. a quarantining
        :class:`~repro.core.multi.MultiMonitor` — must catch them
        itself; the server never silently swallows an error.)
        """
        if self._verify:
            self._check_order(event)
        self.store.add(event)
        self._collected_counter.inc()
        if self._tracer.enabled:
            with self._tracer.span(
                "poet.deliver",
                track="poet.server",
                args={"event": repr(event.event_id),
                      "clients": len(self._clients)},
            ):
                self._fan_out(event)
        else:
            self._fan_out(event)

    def collect_batch(self, events: Sequence[Event]) -> None:
        """Ingest a contiguous slice of the linearization at once.

        Semantically identical to calling :meth:`collect` per event,
        but the per-event fan-out loop, tracer check, and counter
        updates are paid once per batch: clients receive the whole
        slice through their ``on_batch`` hook.  Error accounting
        matches :meth:`collect` — a client raising mid-batch is counted
        once, the other clients still receive the full batch, and the
        first error is re-raised after fan-out completes.
        """
        if not events:
            return
        if self._verify:
            for event in events:
                self._check_order(event)
        self.store.add_batch(events)
        self._collected_counter.inc(len(events))
        if self._tracer.enabled:
            with self._tracer.span(
                "poet.deliver_batch",
                track="poet.server",
                args={"events": len(events),
                      "first": repr(events[0].event_id),
                      "clients": len(self._clients)},
            ):
                self._fan_out_batch(events)
        else:
            self._fan_out_batch(events)

    def _fan_out(self, event: Event) -> None:
        first_error: Optional[BaseException] = None
        for client in list(self._clients):
            try:
                client.on_event(event)
            except Exception as exc:  # noqa: BLE001 - accounted, re-raised
                self.delivery_errors += 1
                self._errors_counter.inc()
                _log.warning(
                    "client delivery failed",
                    extra={"event": repr(event.event_id),
                           "client": type(client).__name__,
                           "error": repr(exc)},
                )
                if first_error is None:
                    first_error = exc
            else:
                self._deliveries_counter.inc()
        if first_error is not None:
            raise first_error

    def _fan_out_batch(self, events: Sequence[Event]) -> None:
        first_error: Optional[BaseException] = None
        for client in list(self._clients):
            try:
                client.on_batch(events)
            except Exception as exc:  # noqa: BLE001 - accounted, re-raised
                self.delivery_errors += 1
                self._errors_counter.inc()
                _log.warning(
                    "client batch delivery failed",
                    extra={"events": len(events),
                           "client": type(client).__name__,
                           "error": repr(exc)},
                )
                if first_error is None:
                    first_error = exc
            else:
                self._deliveries_counter.inc(len(events))
        if first_error is not None:
            raise first_error

    def _check_order(self, event: Event) -> None:
        clock = event.clock
        if self._delivered[event.trace] != clock[event.trace] - 1:
            raise DeliveryOrderError(
                f"event {event.event_id} delivered out of per-trace order"
            )
        for trace in range(len(self._delivered)):
            if trace != event.trace and clock[trace] > self._delivered[trace]:
                raise DeliveryOrderError(
                    f"event {event.event_id} delivered before its predecessor "
                    f"on trace {trace}"
                )
        self._delivered[event.trace] += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_events(self) -> int:
        """Total events collected so far."""
        return self.store.num_events

    def __repr__(self) -> str:
        return (
            f"POETServer({self.store.num_traces} traces, "
            f"{self.store.num_events} events, {len(self._clients)} clients)"
        )
