"""POET server: event collection and causally consistent delivery.

The server owns the :class:`~repro.events.store.EventStore` ("a set of
events grouped by traces", paper Section V-A) and fans every collected
event out to connected clients.  The collection order produced by the
simulation substrate is already a linearization; with ``verify=True``
the server asserts this invariant on every event, which the test suite
uses to guard the whole pipeline.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.events.event import Event
from repro.events.store import EventStore
from repro.poet.client import POETClient


class DeliveryOrderError(RuntimeError):
    """The event source violated causal delivery order."""


class POETServer:
    """Collects instrumented events and streams them to clients.

    Parameters
    ----------
    num_traces:
        Number of traces in the monitored computation.
    trace_names:
        Optional human-readable trace names.
    verify:
        When true, check on every collected event that delivery remains
        a linearization of the partial order (all causal predecessors
        already delivered).  Costs O(num_traces) per event.
    """

    def __init__(
        self,
        num_traces: int,
        trace_names: Optional[Sequence[str]] = None,
        verify: bool = False,
    ):
        self.store = EventStore(num_traces, trace_names)
        self._clients: List[POETClient] = []
        self._verify = verify
        self._delivered = [0] * num_traces

    # ------------------------------------------------------------------
    # Client management
    # ------------------------------------------------------------------

    def connect(self, client: POETClient) -> None:
        """Attach a client; it will see every event from now on."""
        self._clients.append(client)

    def disconnect(self, client: POETClient) -> None:
        """Detach a previously connected client."""
        self._clients.remove(client)

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------

    def collect(self, event: Event) -> None:
        """Ingest the next event: store it and deliver it to clients."""
        if self._verify:
            self._check_order(event)
        self.store.add(event)
        for client in self._clients:
            client.on_event(event)

    def _check_order(self, event: Event) -> None:
        clock = event.clock
        if self._delivered[event.trace] != clock[event.trace] - 1:
            raise DeliveryOrderError(
                f"event {event.event_id} delivered out of per-trace order"
            )
        for trace in range(len(self._delivered)):
            if trace != event.trace and clock[trace] > self._delivered[trace]:
                raise DeliveryOrderError(
                    f"event {event.event_id} delivered before its predecessor "
                    f"on trace {trace}"
                )
        self._delivered[event.trace] += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_events(self) -> int:
        """Total events collected so far."""
        return self.store.num_events

    def __repr__(self) -> str:
        return (
            f"POETServer({self.store.num_traces} traces, "
            f"{self.store.num_events} events, {len(self._clients)} clients)"
        )
