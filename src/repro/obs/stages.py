"""Per-stage pipeline telemetry: the ``ocep_stage_*`` metric family.

Every metric the stack publishes so far is *component*-scoped (POET
delivery counters, matcher counters, hold-back accounting) and named
per component.  An operator of a live pipeline wants the orthogonal
view: the **stage axis** — the same seven-stage chain every
:class:`~repro.engine.pipeline.Pipeline` wires::

    source -> poet -> faults -> holdback -> shedder -> dispatcher -> monitors

:class:`PipelineTelemetry` owns one uniform series set per stage in a
shared :class:`~repro.obs.metrics.MetricsRegistry`:

* ``ocep_stage_events_total{stage=...}`` — events that entered the
  stage (throughput);
* ``ocep_stage_queue_depth{stage=...}`` — events currently queued or
  retained inside the stage (hold-back pending, fault-injector delay
  queue, POET store size);
* ``ocep_stage_latency_seconds{stage=...}`` — wall time one delivery
  spent from this stage's entry hook onward (**inclusive** of
  downstream stages: the outermost stage's histogram is end-to-end
  delivery time, and subtracting adjacent stages yields self time);
* ``ocep_stage_batch_size_events{stage=...}`` — sizes of the
  contiguous slices delivered on the batch path.

Stages with a synchronous push interface (faults, holdback, shedder,
dispatcher) are measured live by interposing a :class:`StageLink` on
the inter-stage edge; stages without one (source, poet, monitors) are
published at :meth:`PipelineTelemetry.refresh` time from registered
probes.  ``refresh`` is called by the scrape server before rendering
``/metrics`` or ``/snapshot`` and by the pipeline at end of run, so a
reader always observes current queue depths.

All series are minted up front, so a scrape taken mid-run exposes all
seven stages even when a stage never saw an event (its counter reads
zero) — the invariant the obs-server smoke job asserts.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry

#: The pipeline's stage names, in delivery order.
STAGES: Tuple[str, ...] = (
    "source",
    "poet",
    "faults",
    "holdback",
    "shedder",
    "dispatcher",
    "monitors",
)

#: Batch-size histogram buckets: powers of two up to the largest
#: replay slice anyone plausibly configures.
BATCH_SIZE_BUCKETS: Tuple[float, ...] = tuple(2.0 ** e for e in range(0, 13))

_EVENTS_HELP = "events that entered the pipeline stage"
_QUEUE_HELP = "events currently queued or retained inside the stage"
_LATENCY_HELP = (
    "wall time a delivery spent from this stage's entry hook onward "
    "(inclusive of downstream stages)"
)
_BATCH_HELP = "contiguous slice sizes delivered to the stage"


class StageLink:
    """Instrumented inter-stage edge.

    Wraps a downstream stage (anything with ``on_event`` /
    ``on_batch``), counts every event through the edge, times the
    inclusive downstream processing, and records batch sizes.  The
    wrapper adds two ``perf_counter`` reads per *delivery* (one per
    batch on the batched path), keeping the serving-enabled overhead
    inside the benchmark gate.
    """

    __slots__ = ("_downstream", "_events", "_latency", "_batch")

    def __init__(self, downstream, events_counter, latency_histogram,
                 batch_histogram):
        self._downstream = downstream
        self._events = events_counter
        self._latency = latency_histogram
        self._batch = batch_histogram

    def on_event(self, event) -> None:
        started = time.perf_counter()
        self._downstream.on_event(event)
        self._latency.observe(time.perf_counter() - started)
        self._events.inc()

    def on_batch(self, events: Sequence) -> None:
        started = time.perf_counter()
        self._downstream.on_batch(events)
        self._latency.observe(time.perf_counter() - started)
        self._events.inc(len(events))
        self._batch.observe(len(events))


class PipelineTelemetry:
    """One pipeline's stage-axis metric surface.

    Mints the full ``ocep_stage_*`` series set for all seven stages at
    construction; hands out :class:`StageLink` interposers for the
    synchronous edges; publishes probe-backed stages on
    :meth:`refresh`.  Also tracks the run lifecycle flags the scrape
    server's ``/readyz`` and ``/healthz`` endpoints report.
    """

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self._counters: Dict[str, object] = {}
        self._queues: Dict[str, object] = {}
        self._latencies: Dict[str, object] = {}
        self._batches: Dict[str, object] = {}
        for stage in STAGES:
            labels = {"stage": stage}
            self._counters[stage] = registry.counter(
                "ocep_stage_events_total", _EVENTS_HELP, labels=labels
            )
            self._queues[stage] = registry.gauge(
                "ocep_stage_queue_depth", _QUEUE_HELP, labels=labels
            )
            self._latencies[stage] = registry.histogram(
                "ocep_stage_latency_seconds", _LATENCY_HELP, labels=labels
            )
            self._batches[stage] = registry.histogram(
                "ocep_stage_batch_size_events", _BATCH_HELP, labels=labels,
                bounds=BATCH_SIZE_BUCKETS,
            )
        #: Monotone totals published via ``set_total`` at refresh.
        self._count_probes: Dict[str, Callable[[], int]] = {}
        self._queue_probes: Dict[str, Callable[[], float]] = {}
        #: Run lifecycle, read by the scrape server from its thread.
        self.started = False
        self.finished = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def link(self, stage: str, downstream) -> StageLink:
        """Interpose a live-measuring link in front of ``downstream``
        and attribute its deliveries to ``stage``."""
        if stage not in self._counters:
            raise KeyError(f"unknown stage {stage!r}; known: {STAGES}")
        return StageLink(
            downstream,
            self._counters[stage],
            self._latencies[stage],
            self._batches[stage],
        )

    def set_count_probe(self, stage: str, probe: Callable[[], int]) -> None:
        """Publish ``stage``'s throughput from a monotone total probe
        at refresh time (stages without a synchronous entry hook)."""
        self._count_probes[stage] = probe

    def set_queue_probe(self, stage: str, probe: Callable[[], float]) -> None:
        """Publish ``stage``'s queue depth from ``probe`` at refresh
        time."""
        self._queue_probes[stage] = probe

    # ------------------------------------------------------------------
    # Lifecycle / publication
    # ------------------------------------------------------------------

    def mark_started(self) -> None:
        self.started = True

    def mark_finished(self) -> None:
        self.finished = True

    def refresh(self) -> None:
        """Pull every registered probe into the registry.  Called by
        the scrape server before rendering and by the pipeline at end
        of run; safe to call from a non-pipeline thread."""
        for stage, probe in self._count_probes.items():
            value = int(probe())
            counter = self._counters[stage]
            # A monotone probe can still appear to step back when read
            # mid-update from another thread; never let that poison
            # the counter invariant.
            if value > counter.value:
                counter.set_total(value)
        for stage, probe in self._queue_probes.items():
            self._queues[stage].set(probe())

    # ------------------------------------------------------------------
    # Introspection (health endpoint)
    # ------------------------------------------------------------------

    def stage_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-stage ``{events, queue_depth}`` snapshot for
        ``/healthz``."""
        return {
            stage: {
                "events": self._counters[stage].value,
                "queue_depth": self._queues[stage].value,
            }
            for stage in STAGES
        }


def attach_telemetry(
    registry: Optional[MetricsRegistry],
) -> Optional[PipelineTelemetry]:
    """Telemetry for ``registry`` when it is a live one, else ``None``
    (the disabled-observability path stays link-free and pays
    nothing)."""
    if registry is None or not registry.enabled:
        return None
    return PipelineTelemetry(registry)


__all__ = [
    "BATCH_SIZE_BUCKETS",
    "PipelineTelemetry",
    "STAGES",
    "StageLink",
    "attach_telemetry",
]
