"""End-to-end detection latency: event occurrence to match report.

The paper's headline metric times the monitor's *search* on arrival of
an event; what an operator of an online monitor also needs is the
**end-to-end lag** Dolev et al. frame for online temporal-pattern
detection: how long after an event *occurred* in the monitored system
was a match containing it reported?  In this reproduction both ends of
that interval live on the simulated clock — an event occurs at the
kernel's ``now`` when it is emitted, and a match is reported while the
kernel is at some later ``now`` (delivery, hold-back repair, and the
trigger event's own arrival all sit in between) — so the latency is
measured in simulated time units and is independent of host speed.

:class:`DetectionLatencyTracker` hangs off two existing hooks:

* as a kernel **event sink** it stamps each event's occurrence time
  (:meth:`observe_event`);
* as a monitor **match callback** it observes, for every event of a
  reported match, ``now - occurrence`` into per-pattern-leaf
  histograms in the shared :class:`~repro.obs.metrics.MetricsRegistry`
  (:meth:`observe_report`).

An event not seen by :meth:`observe_event` (e.g. the trigger itself
when the tracker's sink runs after the server's fan-out) contributes
zero latency, which is exact: a match reported during the trigger's
own delivery is detected the instant the trigger occurs.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry

#: Histogram bounds for simulated-time latencies: powers of two from
#: 1/64 to 16384 time units (delivery delays are O(mean network delay),
#: detection lags O(stream length x action delay)).
DETECTION_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    2.0 ** e for e in range(-6, 15)
)

#: Metric name of the occurrence-to-report histogram (simulated time
#: units; one unlabelled series plus one per pattern leaf).  The unit
#: suffix follows the Prometheus convention of naming the measured
#: unit; the retired spelling is kept as a JSON-snapshot alias.
DETECTION_LATENCY_METRIC = "ocep_detection_latency_sim_time_units"

#: Retired name of :data:`DETECTION_LATENCY_METRIC` (pre-conformance
#: audit); still present in JSON snapshots as an ``alias_of`` entry.
DETECTION_LATENCY_METRIC_LEGACY = "ocep_detection_latency_sim_time"

#: Default cap on retained occurrence stamps.  Stamps for events that
#: never appear in a match were historically kept forever (an unbounded
#: leak on long streams); the tracker now evicts oldest-first past this
#: bound.  An evicted event that later shows up in a match contributes
#: zero latency — the same (exact-at-the-margin) convention as an event
#: never stamped.
DEFAULT_MAX_PENDING_STAMPS = 65_536

_HELP = (
    "simulated time from an event's occurrence to the first match "
    "report containing it"
)


class DetectionLatencyTracker:
    """Tracks occurrence-to-detection latency per pattern event.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current simulated time
        (e.g. ``lambda: kernel.now``).
    registry:
        Metrics registry receiving the histograms; defaults to the
        shared no-op registry.
    max_pending:
        Retention bound on occurrence stamps (oldest evicted first;
        ``None`` restores the historical unbounded behaviour).  The
        current retention level is exported as the
        ``ocep_detection_pending_stamps`` gauge.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        registry: Optional[MetricsRegistry] = None,
        max_pending: Optional[int] = DEFAULT_MAX_PENDING_STAMPS,
    ):
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self._clock = clock
        self._max_pending = max_pending
        self.registry = registry if registry is not None else NULL_REGISTRY
        self._occurred: Dict[Tuple[int, int], float] = {}
        self._total = self.registry.histogram(
            DETECTION_LATENCY_METRIC, _HELP, bounds=DETECTION_LATENCY_BUCKETS,
            alias=DETECTION_LATENCY_METRIC_LEGACY,
        )
        self._per_leaf: Dict[int, object] = {}
        self._reports_counter = self.registry.counter(
            "ocep_detection_reports_total",
            "match reports folded into the detection-latency histograms",
        )
        self._pending_gauge = self.registry.gauge(
            "ocep_detection_pending_stamps",
            "occurrence stamps retained while awaiting a match report",
        )
        #: Latency listeners: called with every observed latency value
        #: (e.g. ``OverloadDetector.observe_latency``).
        self._listeners: list = []
        #: Plain-int mirrors, live under the no-op registry too.
        self.reports_observed = 0
        self.latencies_observed = 0
        self.stamps_evicted = 0

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------

    def add_listener(self, callback: Callable[[float], None]) -> None:
        """Forward every observed latency value to ``callback`` (how
        the overload detector taps the live latency signal)."""
        self._listeners.append(callback)

    def observe_event(self, event) -> None:
        """Kernel sink hook: stamp ``event``'s occurrence time
        (bounded: the oldest stamp is evicted past ``max_pending``)."""
        occurred = self._occurred
        occurred[(event.trace, event.index)] = self._clock()
        if self._max_pending is not None and len(occurred) > self._max_pending:
            occurred.pop(next(iter(occurred)))
            self.stamps_evicted += 1
        self._pending_gauge.set(len(occurred))

    def observe_report(self, report) -> None:
        """Match callback hook: observe the occurrence-to-now latency
        of every event in the reported assignment."""
        now = self._clock()
        self.reports_observed += 1
        self._reports_counter.inc()
        for leaf_id, event in report.assignment:
            occurred = self._occurred.get((event.trace, event.index), now)
            latency = now - occurred
            if latency < 0.0:
                latency = 0.0
            self._total.observe(latency)
            histogram = self._per_leaf.get(leaf_id)
            if histogram is None:
                histogram = self.registry.histogram(
                    DETECTION_LATENCY_METRIC,
                    _HELP,
                    labels={"leaf": str(leaf_id)},
                    bounds=DETECTION_LATENCY_BUCKETS,
                    alias=DETECTION_LATENCY_METRIC_LEGACY,
                )
                self._per_leaf[leaf_id] = histogram
            histogram.observe(latency)
            self.latencies_observed += 1
            for listener in self._listeners:
                listener(latency)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def events_stamped(self) -> int:
        """Distinct events whose occurrence time is recorded."""
        return len(self._occurred)

    def __repr__(self) -> str:
        return (
            f"DetectionLatencyTracker({self.events_stamped} events stamped, "
            f"{self.latencies_observed} latencies from "
            f"{self.reports_observed} reports)"
        )


def track_detection_latency(kernel, registry: MetricsRegistry) -> DetectionLatencyTracker:
    """Wire a tracker to a simulation kernel: the returned tracker
    stamps every emitted event; pass its :meth:`~DetectionLatencyTracker.observe_report`
    as (part of) the monitor's ``on_match`` callback."""
    tracker = DetectionLatencyTracker(clock=lambda: kernel.now, registry=registry)
    kernel.add_sink(tracker.observe_event)
    return tracker
