"""Bounded search trace: a ring buffer of goForward/goBackward decisions.

Aggregate counters say *how much* pruning happened; they cannot say
*why* a particular search exploded or which level a back-jump landed
on.  The search trace records the matcher's individual decisions —
candidate scanned, domain emptied, back-jump taken versus plain
backtrack, budget truncation — into a fixed-capacity ring buffer
(:class:`collections.deque` with ``maxlen``), so post-mortem debugging
of a slow trigger costs O(capacity) memory regardless of how long the
monitor has been running.

Enable it with ``MatcherConfig(search_trace_size=N)``; the matcher
then exposes the buffer as ``OCEPMatcher.search_trace``.  Recording is
guarded by a single ``is None`` test in the hot path, so the disabled
default costs one pointer comparison per decision point.
"""

from __future__ import annotations

import dataclasses
from collections import Counter as _TallyCounter
from collections import deque
from typing import Deque, Iterator, List, Optional

#: Decision kinds recorded by the matcher, in hot-path order.
SEARCH_START = "search_start"      #: a terminating event triggered a search
FORWARD = "forward"                #: goForward instantiated a level
CANDIDATE = "candidate"            #: a candidate was scanned (and rejected)
EMPTY_SLICE = "empty_slice"        #: satisfiable interval, no stored candidate
DOMAIN_CONFLICT = "domain_conflict"  #: restriction emptied the interval
BACKJUMP = "backjump"              #: goBackward jumped to a conflict level
BACKTRACK = "backtrack"            #: goBackward stepped one level
MATCH = "match"                    #: a complete match was reported
TRUNCATED = "truncated"            #: the per-trigger budget ran out

KINDS = (
    SEARCH_START,
    FORWARD,
    CANDIDATE,
    EMPTY_SLICE,
    DOMAIN_CONFLICT,
    BACKJUMP,
    BACKTRACK,
    MATCH,
    TRUNCATED,
)


@dataclasses.dataclass(frozen=True, slots=True)
class TraceRecord:
    """One recorded search decision.

    Attributes
    ----------
    kind:
        One of :data:`KINDS`.
    search:
        The 1-based search ordinal (``OCEPMatcher.searches_run`` at
        the time), correlating records of one trigger.
    level:
        Backtracking level the decision happened at (level 0 is the
        trigger event).
    leaf_id:
        Pattern leaf being instantiated at that level.
    trace:
        Trace being swept, when the decision is trace-specific.
    detail:
        Free-form annotation (event id, jump target, bounds...).
    """

    kind: str
    search: int
    level: int
    leaf_id: int
    trace: Optional[int] = None
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "search": self.search,
            "level": self.level,
            "leaf_id": self.leaf_id,
            "trace": self.trace,
            "detail": self.detail,
        }


class SearchTrace:
    """Fixed-capacity ring buffer of :class:`TraceRecord`.

    Appending past capacity silently evicts the oldest record — the
    buffer always holds the most recent ``capacity`` decisions, which
    is what a post-mortem of "why was the *last* event slow" needs.
    """

    __slots__ = ("_records", "recorded_total")

    DEFAULT_CAPACITY = 4096

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"trace capacity must be positive, got {capacity}")
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        #: Total records ever appended (evicted ones included).
        self.recorded_total = 0

    @property
    def capacity(self) -> int:
        return self._records.maxlen or 0

    def record(
        self,
        kind: str,
        search: int,
        level: int,
        leaf_id: int,
        trace: Optional[int] = None,
        detail: str = "",
    ) -> None:
        self._records.append(
            TraceRecord(kind, search, level, leaf_id, trace, detail)
        )
        self.recorded_total += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def records(self) -> List[TraceRecord]:
        """Buffered records, oldest first."""
        return list(self._records)

    def last_search(self) -> List[TraceRecord]:
        """Records belonging to the most recent search in the buffer."""
        if not self._records:
            return []
        target = self._records[-1].search
        return [r for r in self._records if r.search == target]

    def tally(self) -> dict:
        """Buffered record counts by kind (post-mortem summary)."""
        return dict(_TallyCounter(r.kind for r in self._records))

    def as_dicts(self) -> List[dict]:
        return [r.as_dict() for r in self._records]

    def clear(self) -> None:
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __repr__(self) -> str:
        return (
            f"SearchTrace({len(self)}/{self.capacity} records, "
            f"{self.recorded_total} recorded)"
        )
