"""Observability: metrics, search traces, spans, logs, and exporters.

A dependency-free instrumentation layer for the OCEP stack:

* :mod:`~repro.obs.metrics` — counters, gauges, log-scale-bucket
  latency histograms, and the :class:`MetricsRegistry` that owns them
  (plus the shared no-op :data:`NULL_REGISTRY` making disabled
  observability nearly free);
* :mod:`~repro.obs.trace` — the bounded ring-buffer **search trace**
  recording individual goForward/goBackward decisions for post-mortem
  debugging;
* :mod:`~repro.obs.spans` — the **causal span tracer**: hierarchical
  wall-clock spans plus simulated-time event tracks with
  happens-before flow arrows, exported as Chrome trace-event JSON for
  Perfetto (and the shared no-op :data:`NULL_TRACER`);
* :mod:`~repro.obs.latency` — end-to-end **detection latency**
  (event occurrence to match report, in simulated time);
* :mod:`~repro.obs.log` — JSON-lines structured logging over stdlib
  :mod:`logging`, span-id correlated;
* :mod:`~repro.obs.export` — JSON and Prometheus-text exporters over
  a registry snapshot;
* :mod:`~repro.obs.stages` — the **stage axis**: uniform
  ``ocep_stage_*`` throughput/queue-depth/latency/batch-size series
  for the seven pipeline stages, live-measured via :class:`StageLink`
  interposers;
* :mod:`~repro.obs.server` — the embedded **scrape server**
  (``/metrics``, ``/snapshot``, ``/healthz``, ``/readyz``,
  ``/spans``) serving a running pipeline over HTTP;
* :mod:`~repro.obs.profile` — the thread-sampling wall-clock
  **profiler** with collapsed-stack (flamegraph) output and per-stage
  self-time attribution.

See ``docs/observability.md`` for the metric inventory and usage.
"""

from repro.obs.export import parse_json, to_json, to_prometheus
from repro.obs.latency import (
    DETECTION_LATENCY_BUCKETS,
    DETECTION_LATENCY_METRIC,
    DETECTION_LATENCY_METRIC_LEGACY,
    DetectionLatencyTracker,
    track_detection_latency,
)
from repro.obs.log import JsonLinesFormatter, bind_tracer, configure, get_logger
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.profile import (
    OTHER_STAGE,
    STAGE_MODULES,
    SamplingProfiler,
    stage_of_stack,
)
from repro.obs.server import (
    DEFAULT_SPANS_LIMIT,
    ObsServer,
    PROMETHEUS_CONTENT_TYPE,
)
from repro.obs.spans import (
    MONITOR_PID,
    NULL_TRACER,
    SIM_PID,
    NullTracer,
    SpanTracer,
    to_chrome_json,
    validate_chrome_trace,
    validate_trace_events,
)
from repro.obs.stages import (
    BATCH_SIZE_BUCKETS,
    STAGES,
    PipelineTelemetry,
    StageLink,
    attach_telemetry,
)
from repro.obs.trace import KINDS, SearchTrace, TraceRecord

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "SearchTrace",
    "TraceRecord",
    "KINDS",
    "SpanTracer",
    "NullTracer",
    "NULL_TRACER",
    "SIM_PID",
    "MONITOR_PID",
    "to_chrome_json",
    "validate_trace_events",
    "validate_chrome_trace",
    "DetectionLatencyTracker",
    "track_detection_latency",
    "DETECTION_LATENCY_BUCKETS",
    "DETECTION_LATENCY_METRIC",
    "DETECTION_LATENCY_METRIC_LEGACY",
    "STAGES",
    "BATCH_SIZE_BUCKETS",
    "PipelineTelemetry",
    "StageLink",
    "attach_telemetry",
    "ObsServer",
    "PROMETHEUS_CONTENT_TYPE",
    "DEFAULT_SPANS_LIMIT",
    "SamplingProfiler",
    "STAGE_MODULES",
    "OTHER_STAGE",
    "stage_of_stack",
    "JsonLinesFormatter",
    "bind_tracer",
    "configure",
    "get_logger",
    "to_json",
    "to_prometheus",
    "parse_json",
]
