"""Observability: metrics, search traces, and exporters.

A dependency-free instrumentation layer for the OCEP stack:

* :mod:`~repro.obs.metrics` — counters, gauges, log-scale-bucket
  latency histograms, and the :class:`MetricsRegistry` that owns them
  (plus the shared no-op :data:`NULL_REGISTRY` making disabled
  observability nearly free);
* :mod:`~repro.obs.trace` — the bounded ring-buffer **search trace**
  recording individual goForward/goBackward decisions for post-mortem
  debugging;
* :mod:`~repro.obs.export` — JSON and Prometheus-text exporters over
  a registry snapshot.

See ``docs/observability.md`` for the metric inventory and usage.
"""

from repro.obs.export import parse_json, to_json, to_prometheus
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.trace import KINDS, SearchTrace, TraceRecord

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "SearchTrace",
    "TraceRecord",
    "KINDS",
    "to_json",
    "to_prometheus",
    "parse_json",
]
