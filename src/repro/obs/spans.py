"""Causal span tracing with Chrome trace-event (Perfetto) export.

The metrics layer answers *how much* (counters, histograms) and the
search-trace ring answers *which decisions*; neither can show **where
inside one trigger the time went** or lay the happens-before partial
order out on a timeline.  This module records a run as hierarchical
spans and point events in **two clock domains** and exports them in
the Chrome trace-event JSON format, loadable in Perfetto or
``chrome://tracing``:

* **Simulated time** (pid :data:`SIM_PID`) — one track per trace of
  the monitored computation.  The simulation kernel emits every
  instrumented event as a short slice at its ``kernel.now``, and each
  message (including semaphore grant/release causality) as a
  **flow event** from the send slice to the receive slice.  The flow
  arrows *are* the happens-before edges: the Perfetto view of this
  process group is the partial order itself.

* **Wall-clock time** (pid :data:`MONITOR_PID`) — one track per
  pipeline stage (POET server delivery, hold-back repair, matcher
  search).  The matcher opens a ``matcher.search`` span per triggered
  search (the same 1-based search ordinal as the search-trace ring)
  with nested ``matcher.goForward`` / ``matcher.goBackward`` child
  spans, so one slow trigger can be read level by level.

Wall-clock spans additionally stamp the simulated time at which they
opened (``args.sim_time``) when a ``sim_clock`` is bound, tying the
two domains together.

Everything is **off-by-default-cheap**: components hold
:data:`NULL_TRACER` (a :class:`NullTracer`) unless a real tracer is
installed, and every instrumentation site is guarded by a single
``tracer.enabled`` attribute load, mirroring the
:data:`~repro.obs.metrics.NULL_REGISTRY` bargain (measured by
``benchmarks/test_trace_overhead.py``).

Exports are plain lists of trace-event dicts;
:func:`validate_trace_events` checks the subset of the schema this
module emits (well-formed phases, balanced/nested ``B``/``E`` pairs
per track, flow starts preceding flow finishes) and is reused by the
test suite and the CI smoke step.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

#: Chrome trace-event process id for the simulated-time clock domain.
SIM_PID = 1

#: Chrome trace-event process id for the wall-clock domain.
MONITOR_PID = 2

#: Exported microseconds per simulated time unit.
SIM_TIME_SCALE = 1e6

#: Slice width (exported microseconds) of one simulated point event —
#: wide enough for Perfetto to render and bind flows to, and narrower
#: than the minimum spacing enforced by the per-track timestamp bump.
SIM_EVENT_DUR = 0.8


class _Span:
    """Context manager pairing one ``begin`` with its ``end``."""

    __slots__ = ("_tracer", "_name", "_track", "_args")

    def __init__(self, tracer: "SpanTracer", name: str, track: str, args):
        self._tracer = tracer
        self._name = name
        self._track = track
        self._args = args

    def __enter__(self) -> "_Span":
        self._tracer.begin(self._name, self._track, self._args)
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer.end(self._track)
        return False


class _NullSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class SpanTracer:
    """Records spans, instants, and flows; exports Chrome trace events.

    Parameters
    ----------
    sim_clock:
        Optional zero-argument callable returning the current simulated
        time (e.g. ``lambda: kernel.now``).  When bound, every
        wall-clock span's ``args`` carry the simulated time at which it
        opened, correlating the two clock domains.
    """

    enabled = True

    def __init__(self, sim_clock: Optional[Callable[[], float]] = None):
        self._events: List[dict] = []
        # Guards the event buffer only: the pipeline thread is the sole
        # writer, but the scrape server's /spans endpoint reads the
        # buffer from its own thread mid-run, and a list being appended
        # to must not be copied unlocked.
        self._events_lock = threading.Lock()
        self._span_seq = itertools.count(1)
        self._flow_seq = itertools.count(1)
        self._flow_ids: Dict[Any, int] = {}
        self._stack: List[int] = []
        self._track_tids: Dict[str, int] = {}
        self._sim_tracks: Dict[int, str] = {}
        self._last_sim_ts: Dict[int, float] = {}
        self._named_pids: set = set()
        self._epoch = time.perf_counter()
        self._sim_clock = sim_clock
        # Plain-int tallies so invariant tests can cross-check counts
        # without re-scanning the event list.
        self.spans_opened = 0
        self.sim_events = 0
        self.flows_started = 0
        self.flows_finished = 0
        self.instants = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def bind_sim_clock(self, sim_clock: Optional[Callable[[], float]]) -> None:
        """Bind (or clear) the simulated-time clock source."""
        self._sim_clock = sim_clock

    def _append(self, event: dict) -> None:
        with self._events_lock:
            self._events.append(event)

    @property
    def current_span_id(self) -> Optional[int]:
        """Id of the innermost open wall-clock span (log correlation)."""
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------
    # Track registration (lazy metadata events)
    # ------------------------------------------------------------------

    def _ensure_pid(self, pid: int, name: str) -> None:
        if pid not in self._named_pids:
            self._named_pids.add(pid)
            self._append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "name": "process_name",
                    "args": {"name": name},
                }
            )

    def sim_track(self, trace: int, name: str) -> None:
        """Register (and label) the simulated-time track of ``trace``."""
        self._ensure_pid(SIM_PID, "simulation")
        if trace not in self._sim_tracks:
            self._sim_tracks[trace] = name
            self._append(
                {
                    "ph": "M",
                    "pid": SIM_PID,
                    "tid": trace,
                    "name": "thread_name",
                    "args": {"name": name},
                }
            )

    def _wall_tid(self, track: str) -> int:
        tid = self._track_tids.get(track)
        if tid is None:
            self._ensure_pid(MONITOR_PID, "monitor")
            tid = len(self._track_tids) + 1
            self._track_tids[track] = tid
            self._append(
                {
                    "ph": "M",
                    "pid": MONITOR_PID,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": track},
                }
            )
        return tid

    def _wall_us(self) -> float:
        return (time.perf_counter() - self._epoch) * 1e6

    # ------------------------------------------------------------------
    # Simulated-time domain
    # ------------------------------------------------------------------

    def sim_event(
        self,
        trace: int,
        name: str,
        sim_time: float,
        args: Optional[Mapping[str, Any]] = None,
    ) -> float:
        """Record one simulated point event as a short slice; returns
        the exported timestamp (microseconds), which flow events of the
        same point must reuse to bind to the slice.

        Several kernel events can share one simulated instant (e.g. a
        semaphore's ``Released`` and the next ``Grant``); colliding
        timestamps are bumped apart by 1 exported microsecond per
        track so slices never overlap (``args.sim_time`` keeps the
        exact value).
        """
        ts = sim_time * SIM_TIME_SCALE
        last = self._last_sim_ts.get(trace)
        if last is not None and ts < last + 1.0:
            ts = last + 1.0
        self._last_sim_ts[trace] = ts
        payload = {"sim_time": sim_time}
        if args:
            payload.update(args)
        self._append(
            {
                "ph": "X",
                "name": name,
                "cat": "sim",
                "pid": SIM_PID,
                "tid": trace,
                "ts": ts,
                "dur": SIM_EVENT_DUR,
                "args": payload,
            }
        )
        self.sim_events += 1
        return ts

    def flow_id(self, key: Any) -> int:
        """Stable flow id for an application key (e.g. a send's
        :class:`~repro.events.event.EventId`)."""
        fid = self._flow_ids.get(key)
        if fid is None:
            fid = next(self._flow_seq)
            self._flow_ids[key] = fid
        return fid

    def flow_start(
        self,
        key: Any,
        trace: int,
        sim_time: float,
        ts: Optional[float] = None,
        name: str = "message",
    ) -> None:
        """Open a flow (happens-before edge) at a simulated event."""
        self._append(
            {
                "ph": "s",
                "id": self.flow_id(key),
                "name": name,
                "cat": "flow",
                "pid": SIM_PID,
                "tid": trace,
                "ts": ts if ts is not None else sim_time * SIM_TIME_SCALE,
                "args": {"sim_time": sim_time},
            }
        )
        self.flows_started += 1

    def flow_finish(
        self,
        key: Any,
        trace: int,
        sim_time: float,
        ts: Optional[float] = None,
        name: str = "message",
    ) -> None:
        """Close a flow at the causally succeeding simulated event."""
        self._append(
            {
                "ph": "f",
                "bp": "e",
                "id": self.flow_id(key),
                "name": name,
                "cat": "flow",
                "pid": SIM_PID,
                "tid": trace,
                "ts": ts if ts is not None else sim_time * SIM_TIME_SCALE,
                "args": {"sim_time": sim_time},
            }
        )
        self.flows_finished += 1

    # ------------------------------------------------------------------
    # Wall-clock domain
    # ------------------------------------------------------------------

    def begin(
        self,
        name: str,
        track: str = "monitor",
        args: Optional[Mapping[str, Any]] = None,
    ) -> int:
        """Open a wall-clock span on ``track``; returns its span id.

        Spans on one track must close in LIFO order — use
        :meth:`span` for guaranteed pairing.
        """
        span_id = next(self._span_seq)
        payload: Dict[str, Any] = {"span": span_id}
        if self._sim_clock is not None:
            payload["sim_time"] = self._sim_clock()
        if args:
            payload.update(args)
        self._append(
            {
                "ph": "B",
                "name": name,
                "cat": "ocep",
                "pid": MONITOR_PID,
                "tid": self._wall_tid(track),
                "ts": self._wall_us(),
                "args": payload,
            }
        )
        self._stack.append(span_id)
        self.spans_opened += 1
        return span_id

    def end(self, track: str = "monitor") -> None:
        """Close the innermost open span on ``track``."""
        if not self._stack:
            raise RuntimeError("SpanTracer.end() with no open span")
        self._stack.pop()
        self._append(
            {
                "ph": "E",
                "pid": MONITOR_PID,
                "tid": self._wall_tid(track),
                "ts": self._wall_us(),
            }
        )

    def span(
        self,
        name: str,
        track: str = "monitor",
        args: Optional[Mapping[str, Any]] = None,
    ) -> _Span:
        """Context manager opening a span on enter, closing on exit."""
        return _Span(self, name, track, args)

    def instant(
        self,
        name: str,
        track: str = "monitor",
        args: Optional[Mapping[str, Any]] = None,
        sim_time: Optional[float] = None,
        trace: Optional[int] = None,
    ) -> None:
        """Record a point annotation — wall-clock on ``track`` by
        default, or on a simulated-time track when ``sim_time`` (and
        ``trace``) are given."""
        if sim_time is not None:
            pid, tid, ts = SIM_PID, int(trace or 0), sim_time * SIM_TIME_SCALE
        else:
            pid, tid, ts = MONITOR_PID, self._wall_tid(track), self._wall_us()
        event = {
            "ph": "i",
            "s": "t",
            "name": name,
            "cat": "ocep",
            "pid": pid,
            "tid": tid,
            "ts": ts,
        }
        if args:
            event["args"] = dict(args)
        self._append(event)
        self.instants += 1

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def events(self) -> List[dict]:
        """The recorded trace events (a copy), in recording order."""
        with self._events_lock:
            return list(self._events)

    def events_tail(self, limit: int = 256) -> List[dict]:
        """The most recent ``limit`` trace events (a copy) — the span
        ring served by the scrape server's ``/spans`` endpoint.  Safe
        to call from another thread while the pipeline records."""
        if limit < 0:
            raise ValueError(f"limit must be >= 0, got {limit}")
        with self._events_lock:
            if limit == 0:
                return []
            return list(self._events[-limit:])

    def chrome_trace(self) -> dict:
        """The full Chrome trace-event document (JSON object form)."""
        return {
            "traceEvents": list(self._events),
            "displayTimeUnit": "ms",
            "otherData": {"generator": "repro.obs.spans"},
        }

    def __len__(self) -> int:
        with self._events_lock:
            return len(self._events)

    def __repr__(self) -> str:
        return (
            f"SpanTracer({len(self)} events, "
            f"{self.spans_opened} spans, {self.flows_started} flows)"
        )


class NullTracer(SpanTracer):
    """The disabled path: every method is a no-op, nothing is stored.

    Class-compatible with :class:`SpanTracer`, so components hold a
    tracer unconditionally and guard instrumentation sites with a
    single ``tracer.enabled`` load.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def bind_sim_clock(self, sim_clock) -> None:
        pass

    @property
    def current_span_id(self) -> Optional[int]:
        return None

    def sim_track(self, trace, name) -> None:
        pass

    def sim_event(self, trace, name, sim_time, args=None) -> float:
        return 0.0

    def flow_start(self, key, trace, sim_time, ts=None, name="message") -> None:
        pass

    def flow_finish(self, key, trace, sim_time, ts=None, name="message") -> None:
        pass

    def begin(self, name, track="monitor", args=None) -> int:
        return 0

    def end(self, track="monitor") -> None:
        pass

    def span(self, name, track="monitor", args=None) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name, track="monitor", args=None, sim_time=None, trace=None) -> None:
        pass

    def events(self) -> List[dict]:
        return []

    def events_tail(self, limit: int = 256) -> List[dict]:
        return []

    def chrome_trace(self) -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ms"}


#: Module-level shared no-op tracer; the default everywhere.
NULL_TRACER = NullTracer()


def to_chrome_json(tracer: SpanTracer, indent: Optional[int] = None) -> str:
    """Serialise a tracer's recording as Chrome trace-event JSON."""
    return json.dumps(tracer.chrome_trace(), indent=indent, allow_nan=False)


# ----------------------------------------------------------------------
# Validation (shared by tests and the CI smoke step)
# ----------------------------------------------------------------------

#: Phases this module emits.
_KNOWN_PHASES = ("M", "X", "B", "E", "i", "s", "f")


def validate_trace_events(events: List[dict]) -> dict:
    """Check a trace-event list against the schema subset this module
    emits; returns summary statistics or raises :class:`ValueError`.

    Checked invariants:

    * every entry is a dict with a known ``ph`` and the fields that
      phase requires (``ts``/``pid``/``tid`` on timed events, ``dur``
      on complete events, ``id`` on flow events);
    * ``B``/``E`` pairs balance and nest per ``(pid, tid)`` track, and
      an ``E`` never precedes its ``B`` in wall time;
    * complete (``X``) slices on one track never partially overlap;
    * every flow finish has a flow start with the same ``id``, and the
      start's simulated time never exceeds the finish's.
    """
    stacks: Dict[Tuple[int, int], List[dict]] = {}
    slice_end: Dict[Tuple[int, int], float] = {}
    flow_starts: Dict[Any, dict] = {}
    counts = {"events": 0, "spans": 0, "sim_events": 0, "flows": 0,
              "instants": 0, "metadata": 0}

    def _fail(index: int, message: str) -> None:
        raise ValueError(f"trace event {index}: {message}")

    def _require(index: int, event: dict, *fields: str) -> None:
        for field in fields:
            if field not in event:
                _fail(index, f"phase {event.get('ph')!r} missing {field!r}")

    for index, event in enumerate(events):
        if not isinstance(event, dict):
            _fail(index, "not an object")
        counts["events"] += 1
        ph = event.get("ph")
        if ph not in _KNOWN_PHASES:
            _fail(index, f"unknown phase {ph!r}")
        if ph == "M":
            _require(index, event, "name", "pid", "args")
            counts["metadata"] += 1
            continue
        _require(index, event, "ts", "pid", "tid")
        if not isinstance(event["ts"], (int, float)):
            _fail(index, f"non-numeric ts {event['ts']!r}")
        key = (event["pid"], event["tid"])
        if ph == "X":
            _require(index, event, "name", "dur")
            if event["dur"] < 0:
                _fail(index, f"negative dur {event['dur']!r}")
            start, end = event["ts"], event["ts"] + event["dur"]
            previous_end = slice_end.get(key)
            if previous_end is not None and start < previous_end:
                _fail(
                    index,
                    f"slice {event.get('name')!r} at ts={start} overlaps "
                    f"the previous slice on track {key} (ends {previous_end})",
                )
            slice_end[key] = end
            counts["sim_events"] += 1
        elif ph == "B":
            _require(index, event, "name")
            stacks.setdefault(key, []).append(event)
            counts["spans"] += 1
        elif ph == "E":
            stack = stacks.get(key)
            if not stack:
                _fail(index, f"E with no open B on track {key}")
            begin = stack.pop()
            if event["ts"] < begin["ts"]:
                _fail(
                    index,
                    f"span {begin.get('name')!r} ends at ts={event['ts']} "
                    f"before it began (ts={begin['ts']})",
                )
        elif ph == "i":
            _require(index, event, "name")
            counts["instants"] += 1
        elif ph == "s":
            _require(index, event, "id", "name")
            if event["id"] in flow_starts:
                _fail(index, f"duplicate flow start id {event['id']!r}")
            flow_starts[event["id"]] = event
            counts["flows"] += 1
        elif ph == "f":
            _require(index, event, "id", "name")
            start = flow_starts.get(event["id"])
            if start is None:
                _fail(index, f"flow finish id {event['id']!r} has no start")
            start_time = start.get("args", {}).get("sim_time", start["ts"])
            finish_time = event.get("args", {}).get("sim_time", event["ts"])
            if start_time > finish_time:
                _fail(
                    index,
                    f"flow {event['id']!r} finishes at sim_time="
                    f"{finish_time} before its start ({start_time})",
                )

    unbalanced = {key: stack for key, stack in stacks.items() if stack}
    if unbalanced:
        detail = ", ".join(
            f"{key}: {[e.get('name') for e in stack]}"
            for key, stack in unbalanced.items()
        )
        raise ValueError(f"unclosed spans per track: {detail}")
    return counts


def validate_chrome_trace(document: dict) -> dict:
    """Validate a full Chrome trace-event document (the JSON object
    form with a ``traceEvents`` array)."""
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("not a Chrome trace document (no traceEvents)")
    if not isinstance(document["traceEvents"], list):
        raise ValueError("traceEvents is not an array")
    return validate_trace_events(document["traceEvents"])
