"""Dependency-free metrics primitives: counters, gauges, histograms.

The paper's headline evaluation metric is "execution time ... taken by
the monitor to find the set of matches on arrival of an event"
(Section V), and the ROADMAP's production north star needs pruning
effectiveness and latency to be first-class outputs rather than ad-hoc
``List[float]`` timing lists.  This module provides the minimal metric
model those callers need:

* :class:`Counter` — a monotone count (searches run, candidates
  scanned, back-jumps taken, ...);
* :class:`Gauge` — a point-in-time value (subset size, history size);
* :class:`Histogram` — a latency distribution over **fixed log-scale
  buckets**, so per-event matching times spanning six orders of
  magnitude (sub-microsecond no-op events to millisecond searches) are
  all resolved without pre-tuning;
* :class:`MetricsRegistry` — the namespace that owns them, snapshots
  them, and feeds the exporters in :mod:`repro.obs.export`.

Instrumentation is **off-by-default-cheap**: :data:`NULL_REGISTRY` (a
:class:`NullRegistry`) hands out shared no-op metric objects whose
``inc``/``set``/``observe`` do nothing, so components can
unconditionally hold metric references and pay only an attribute load
and an empty call when observability is disabled.  Hot inner loops
(the matcher's candidate scan) avoid even that by accumulating plain
integers and publishing them into the registry at snapshot time — see
``OCEPMatcher.publish_metrics``.

Metric identity is ``(name, labels)`` where ``labels`` is a sorted
tuple of ``(key, value)`` pairs, mirroring the Prometheus data model;
:class:`~repro.core.multi.MultiMonitor` uses a ``pattern`` label to
keep per-pattern series apart in one registry.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Canonical label form: sorted (key, value) pairs.
LabelSet = Tuple[Tuple[str, str], ...]

#: Default histogram buckets: powers of two from ~1 microsecond to
#: ~16 seconds (in seconds).  25 buckets cover every per-event latency
#: the monitor can plausibly produce at <5% relative resolution cost.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    2.0 ** e for e in range(-20, 5)
)


def _labels(labels: Optional[Mapping[str, str]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "labels", "value", "alias")

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: LabelSet = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self.value = 0
        self.alias: Optional[str] = None

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def set_total(self, value: int) -> None:
        """Publish an externally accumulated total (e.g. a plain-int
        hot-path counter).  Must never move backwards."""
        if value < self.value:
            raise ValueError(
                f"counter {self.name} cannot decrease "
                f"({self.value} -> {value})"
            )
        self.value = value

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge:
    """A point-in-time value that can go up and down."""

    __slots__ = ("name", "help", "labels", "value", "alias")

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: LabelSet = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self.value = 0.0
        self.alias: Optional[str] = None

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Histogram:
    """A distribution over fixed log-scale buckets.

    ``bounds`` are the inclusive upper edges of the finite buckets; an
    implicit +Inf bucket catches the overflow.  Alongside the bucket
    counts the histogram tracks exact ``count``/``sum``/``min``/``max``
    so means are not quantised.
    """

    __slots__ = ("name", "help", "labels", "bounds", "bucket_counts",
                 "count", "sum", "min", "max", "alias")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: LabelSet = (),
        bounds: Optional[Sequence[float]] = None,
    ):
        self.name = name
        self.help = help
        self.labels = labels
        chosen = tuple(bounds) if bounds is not None else DEFAULT_LATENCY_BUCKETS
        if list(chosen) != sorted(chosen):
            raise ValueError(f"histogram {name}: bounds must be sorted")
        self.bounds = chosen
        self.bucket_counts = [0] * (len(chosen) + 1)  # +Inf overflow
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.alias: Optional[str] = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolved quantile estimate (upper bucket edge).

        Exact to within one log-scale bucket; returns ``max`` for the
        overflow bucket and ``0`` on an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, bucket in enumerate(self.bucket_counts):
            seen += bucket
            if seen >= rank and bucket:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self.max
        return self.max

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "buckets": [
                {"le": le if le != math.inf else "+Inf", "count": c}
                for le, c in zip(
                    list(self.bounds) + [math.inf], self.bucket_counts
                )
            ],
        }


class MetricsRegistry:
    """Owns every metric of one monitoring deployment.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call mints the metric, later calls with the same ``(name, labels)``
    return the same object (kind mismatches raise).  ``snapshot``
    produces the JSON-ready structure consumed by the exporters.

    Registration and snapshotting are guarded by an internal lock, so
    a scrape-server thread can snapshot a registry while the pipeline
    thread is still minting per-label series (the ``/metrics`` and
    ``/snapshot`` endpoints of :mod:`repro.obs.server` do exactly
    that).  Individual ``inc``/``set``/``observe`` calls are *not*
    locked — under the GIL a concurrent reader sees a slightly stale
    but structurally valid value, which is the usual scrape bargain.

    ``alias`` names the metric's retired spelling: renamed metrics
    keep one back-compat entry in the JSON snapshot (marked with
    ``alias_of``) so downstream dashboards keyed on the old name keep
    working; the Prometheus exposition only carries the new name.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelSet], object] = {}
        self._lock = threading.RLock()

    def _get(self, cls, name, help, labels, alias=None, **kwargs):
        key = (name, _labels(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, requested {cls.kind}"
                    )
                return existing
            metric = cls(name, help=help, labels=key[1], **kwargs)
            if alias is not None:
                metric.alias = alias
            self._metrics[key] = metric
            return metric

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        alias: Optional[str] = None,
    ) -> Counter:
        return self._get(Counter, name, help, labels, alias=alias)

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        alias: Optional[str] = None,
    ) -> Gauge:
        return self._get(Gauge, name, help, labels, alias=alias)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        bounds: Optional[Sequence[float]] = None,
        alias: Optional[str] = None,
    ) -> Histogram:
        return self._get(Histogram, name, help, labels, alias=alias,
                         bounds=bounds)

    def metrics(self) -> List[object]:
        """Every registered metric, in deterministic (name, labels)
        order (a point-in-time copy, safe against concurrent
        registration)."""
        with self._lock:
            return [self._metrics[key] for key in sorted(self._metrics)]

    def get(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Optional[object]:
        """Look up a metric without creating it."""
        with self._lock:
            return self._metrics.get((name, _labels(labels)))

    def snapshot(self) -> List[dict]:
        """JSON-ready dump of every metric; renamed metrics contribute
        one extra entry under their retired name (``alias_of`` marks
        it) so old dashboards keep resolving."""
        entries = []
        for metric in self.metrics():
            entry = metric.as_dict()
            entries.append(entry)
            alias = getattr(metric, "alias", None)
            if alias:
                entries.append({**entry, "name": alias,
                                "alias_of": metric.name})
        return entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __iter__(self) -> Iterable[object]:
        return iter(self.metrics())


class _NullMetric:
    """Shared do-nothing stand-in for every metric kind."""

    __slots__ = ()

    name = "null"
    help = ""
    labels: LabelSet = ()
    kind = "null"
    value = 0
    count = 0
    sum = 0.0
    alias = None

    def inc(self, amount=1):  # noqa: D102 - no-op
        pass

    def dec(self, amount=1):
        pass

    def set(self, value):
        pass

    def set_total(self, value):
        pass

    def observe(self, value):
        pass

    def quantile(self, q):
        return 0.0

    @property
    def mean(self):
        return 0.0

    def as_dict(self) -> dict:
        return {"name": self.name, "kind": self.kind}


_NULL_METRIC = _NullMetric()


class NullRegistry(MetricsRegistry):
    """The disabled-observability path: every request returns one
    shared no-op metric, nothing is stored, snapshots are empty.

    Kept class-compatible with :class:`MetricsRegistry` so callers
    never branch — they just call ``inc``/``observe`` into the void.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def _get(self, cls, name, help, labels, **kwargs):
        return _NULL_METRIC

    def metrics(self) -> List[object]:
        return []

    def get(self, name, labels=None):
        return None


#: Module-level shared no-op registry; the default everywhere.
NULL_REGISTRY = NullRegistry()
