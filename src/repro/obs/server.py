"""Embedded scrape server: live ``/metrics`` over a running pipeline.

Every exporter so far is post-hoc — a snapshot taken after the run
finishes.  A production monitor (and the ROADMAP's multi-process
scale-out, whose workers are observable only over the wire) needs the
pull model instead: an HTTP endpoint a Prometheus scraper, a readiness
probe, or a human with ``curl`` can hit *while the pipeline runs*.

:class:`ObsServer` is that endpoint — a dependency-free
``http.server.ThreadingHTTPServer`` on a daemon thread:

``GET /metrics``
    The registry in Prometheus text exposition format
    (:func:`~repro.obs.export.to_prometheus`), refreshed through the
    pipeline telemetry's probe hook first so queue depths are current.

``GET /snapshot``
    The JSON document of :func:`~repro.obs.export.to_json`, including
    the back-compat alias entries for renamed metrics.

``GET /healthz``
    Liveness + stage health as JSON: run state, per-stage
    events/queue-depth summary, the overload detector state, hold-back
    stall flag, and quarantined shards.  Always ``200`` while the
    process lives — degradation is reported in the body (``status``),
    matching the liveness-vs-readiness split.

``GET /readyz``
    ``200`` once the pipeline has started delivering (and from then
    on), ``503`` before.

``GET /spans``
    The most recent span-ring entries of the bound
    :class:`~repro.obs.spans.SpanTracer` as JSON (``?limit=N``,
    default 256) — the live tail of the Perfetto timeline.

Thread safety: request handlers run on server threads while the
pipeline thread keeps publishing.  Registry snapshots and span-ring
reads are internally locked (see :class:`~repro.obs.metrics.MetricsRegistry`
and :meth:`~repro.obs.spans.SpanTracer.events_tail`); the health
callback reads plain attributes, which is safe under the GIL.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional
from urllib.parse import parse_qs, urlparse

from repro.obs.export import to_json, to_prometheus
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import NULL_TRACER, SpanTracer

_log = get_logger("obs.server")

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default span-ring entries served by ``/spans``.
DEFAULT_SPANS_LIMIT = 256


class ObsServer:
    """Serves one registry (and optionally one tracer) over HTTP.

    Parameters
    ----------
    registry:
        The metrics registry to expose.
    tracer:
        Span tracer backing ``/spans`` (defaults to the shared no-op
        tracer, which serves an empty ring).
    health:
        Zero-argument callable returning the ``/healthz`` JSON body.
        Must be safe to call from a server thread; defaults to a
        minimal always-ready document.
    refresh:
        Zero-argument callable run before each ``/metrics`` and
        ``/snapshot`` render (the pipeline telemetry's probe pull).
    host / port:
        Bind address; port ``0`` picks a free port (the bound port is
        available as :attr:`port` after :meth:`start`).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        tracer: Optional[SpanTracer] = None,
        health: Optional[Callable[[], Dict]] = None,
        refresh: Optional[Callable[[], None]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.registry = registry
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._health = health
        self._refresh = refresh
        self._host = host
        self._requested_port = port
        #: The actually bound port, cached at :meth:`start` so the
        #: ephemeral-port case (``port=0``) stays reportable even after
        #: :meth:`stop` tears the socket down (result banners and
        #: cluster workers read it post-run).
        self._bound_port: Optional[int] = None
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        #: Requests served per path (plain ints; scrape self-accounting
        #: lands in the registry on each refresh).
        self.requests_served = 0
        self._requests_counter = registry.counter(
            "ocep_obs_requests_total",
            "HTTP requests served by the embedded scrape server",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The actually bound port — with ``port=0`` this is the
        ephemeral port the OS picked, never the requested ``0``.
        Stays readable after :meth:`stop` (the last bound port)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        if self._bound_port is not None:
            return self._bound_port
        raise RuntimeError("server never started")

    @property
    def url(self) -> str:
        """Scrape base URL with the actual bound port.  A wildcard bind
        address is rendered as a loopback address (a URL containing
        ``0.0.0.0`` is not fetchable)."""
        host = self._host
        if host in ("", "0.0.0.0", "::"):
            host = "127.0.0.1"
        return f"http://{host}:{self.port}"

    def start(self) -> int:
        """Bind, spawn the serving thread (daemon), return the port."""
        if self._httpd is not None:
            return self.port
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), handler
        )
        self._bound_port = self._httpd.server_address[1]
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="ocep-obs-server",
            daemon=True,
        )
        self._thread.start()
        _log.info("scrape server listening", extra={"url": self.url})
        return self.port

    def stop(self) -> None:
        """Shut the server down and join the serving thread."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "ObsServer":
        self.start()
        return self

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    # Rendering (called from handler threads)
    # ------------------------------------------------------------------

    def _run_refresh(self) -> None:
        self._requests_counter.set_total(self.requests_served)
        if self._refresh is not None:
            self._refresh()

    def render_metrics(self) -> str:
        self._run_refresh()
        return to_prometheus(self.registry)

    def render_snapshot(self) -> str:
        self._run_refresh()
        return to_json(self.registry)

    def render_health(self) -> Dict:
        if self._health is not None:
            return self._health()
        return {"status": "ok", "ready": True, "running": False}

    def render_spans(self, limit: int) -> Dict:
        return {
            "limit": limit,
            "total_recorded": len(self.tracer),
            "events": self.tracer.events_tail(limit),
        }


def _make_handler(server: ObsServer):
    class _Handler(BaseHTTPRequestHandler):
        # Scrapes are frequent; route access logs to the structured
        # logger at debug instead of spraying stderr.
        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            _log.debug(format % args)

        def _send(self, status: int, body: str, content_type: str) -> None:
            payload = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def _send_json(self, status: int, document: Dict) -> None:
            self._send(
                status,
                json.dumps(document, indent=2, sort_keys=True, default=repr)
                + "\n",
                "application/json; charset=utf-8",
            )

        def do_GET(self) -> None:  # noqa: N802 - stdlib casing
            server.requests_served += 1
            parsed = urlparse(self.path)
            try:
                if parsed.path == "/metrics":
                    self._send(200, server.render_metrics(),
                               PROMETHEUS_CONTENT_TYPE)
                elif parsed.path == "/snapshot":
                    self._send(200, server.render_snapshot() + "\n",
                               "application/json; charset=utf-8")
                elif parsed.path == "/healthz":
                    self._send_json(200, server.render_health())
                elif parsed.path == "/readyz":
                    health = server.render_health()
                    ready = bool(health.get("ready"))
                    self._send_json(200 if ready else 503,
                                    {"ready": ready})
                elif parsed.path == "/spans":
                    query = parse_qs(parsed.query)
                    try:
                        limit = int(query.get("limit", [DEFAULT_SPANS_LIMIT])[0])
                        if limit < 0:
                            raise ValueError
                    except ValueError:
                        self._send_json(400, {"error": "bad limit"})
                        return
                    self._send_json(200, server.render_spans(limit))
                else:
                    self._send_json(404, {"error": f"no route {parsed.path}"})
            except BrokenPipeError:
                pass  # scraper went away mid-response
            except Exception as exc:  # pragma: no cover - defensive
                _log.warning("request failed", extra={"error": repr(exc)})
                try:
                    self._send_json(500, {"error": repr(exc)})
                except OSError:
                    pass

    return _Handler


__all__ = [
    "DEFAULT_SPANS_LIMIT",
    "ObsServer",
    "PROMETHEUS_CONTENT_TYPE",
]
