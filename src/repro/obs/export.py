"""Exporters: registry snapshots as JSON or Prometheus text format.

Two formats cover the two consumers the ROADMAP cares about:

* **JSON** — machine-readable dumps for the benchmark harness and for
  comparing runs across PRs (``BENCH_*.json``); round-trips through
  :func:`parse_json` back to plain dicts keyed by ``(name, labels)``.
* **Prometheus text exposition format** — scrapeable output for a
  production deployment (``# TYPE``/``# HELP`` lines, cumulative
  ``_bucket`` series with ``le`` labels, ``_sum``/``_count``).

Both operate on a :class:`~repro.obs.metrics.MetricsRegistry`; the
no-op registry exports an empty document.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Tuple

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

#: Schema version stamped into JSON exports.
JSON_SCHEMA_VERSION = 1


def to_json(registry: MetricsRegistry, indent: int = 2) -> str:
    """Serialise every metric in the registry as a JSON document."""
    payload = {
        "schema": JSON_SCHEMA_VERSION,
        "metrics": registry.snapshot(),
    }
    # Metric dicts render non-finite values (the +Inf histogram bucket)
    # as strings, so strict JSON with allow_nan=False stays valid.
    return json.dumps(payload, indent=indent, sort_keys=True, allow_nan=False)


def parse_json(text: str) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], dict]:
    """Parse a :func:`to_json` document back to a dict keyed by
    ``(name, labels)`` — the round-trip used by tests and by run
    comparison tooling."""
    payload = json.loads(text)
    if payload.get("schema") != JSON_SCHEMA_VERSION:
        raise ValueError(f"unsupported metrics schema {payload.get('schema')!r}")
    result = {}
    for metric in payload["metrics"]:
        labels = tuple(sorted(metric.get("labels", {}).items()))
        result[(metric["name"], labels)] = metric
    return result


# ----------------------------------------------------------------------
# Prometheus text exposition format
# ----------------------------------------------------------------------


def _prom_labels(labels, extra=()) -> str:
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    rendered = ",".join(f'{k}="{_prom_escape(v)}"' for k, v in pairs)
    return "{" + rendered + "}"


def _prom_escape(value) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_float(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines = []
    typed = set()
    for metric in registry.metrics():
        if metric.name not in typed:
            typed.add(metric.name)
            if metric.help:
                lines.append(f"# HELP {metric.name} {_prom_escape(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Counter):
            lines.append(
                f"{metric.name}{_prom_labels(metric.labels)} {metric.value}"
            )
        elif isinstance(metric, Gauge):
            lines.append(
                f"{metric.name}{_prom_labels(metric.labels)} "
                f"{_prom_float(metric.value)}"
            )
        elif isinstance(metric, Histogram):
            cumulative = 0
            for le, count in zip(
                list(metric.bounds) + [math.inf], metric.bucket_counts
            ):
                cumulative += count
                labels = _prom_labels(
                    metric.labels, extra=[("le", _prom_float(le))]
                )
                lines.append(f"{metric.name}_bucket{labels} {cumulative}")
            base = _prom_labels(metric.labels)
            lines.append(f"{metric.name}_sum{base} {_prom_float(metric.sum)}")
            lines.append(f"{metric.name}_count{base} {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")
