"""Thread-sampling wall-clock profiler with collapsed-stack output.

Per-stage latency histograms say which *stage* is slow; a profile says
which *code* inside it.  :class:`SamplingProfiler` samples the target
thread's Python stack via ``sys._current_frames()`` from a daemon
thread at a fixed interval — no tracing hooks, no interpreter
slowdown on the profiled path beyond the GIL handoffs the sampler
itself costs — and aggregates:

* **collapsed stacks** (``root;child;leaf count`` lines), the input
  format of Brendan Gregg's ``flamegraph.pl`` and of speedscope's
  collapsed importer, written by ``ocep profile -o``;
* **per-stage self time**: each sample is attributed to the pipeline
  stage owning its innermost ``repro``-module frame (see
  :data:`STAGE_MODULES`), yielding the exclusive-time split the
  inclusive ``ocep_stage_latency_seconds`` histograms cannot show.

Sampling is statistical: counts are proportional to wall time spent,
with resolution ``interval`` (5 ms default — ~200 samples per busy
second, negligible sampler load).
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter as _TallyCounter
from typing import Dict, List, Optional, Tuple

#: Longest-prefix map from module path to owning pipeline stage; the
#: innermost frame that matches attributes the sample.  Order does not
#: matter (longest prefix wins).
STAGE_MODULES: Dict[str, str] = {
    "repro.simulation": "source",
    "repro.workloads": "source",
    "repro.poet.holdback": "holdback",
    "repro.poet": "poet",
    "repro.resilience.faults": "faults",
    "repro.resilience.overload": "shedder",
    "repro.engine.dispatch": "dispatcher",
    "repro.core.multi": "dispatcher",
    "repro.core": "monitors",
    "repro.clocks": "monitors",
    "repro.events": "monitors",
    "repro.obs": "observability",
}

#: Stage assigned to samples whose stack holds no mapped frame.
OTHER_STAGE = "other"


def stage_of_stack(module_names: List[str]) -> str:
    """Attribute one sampled stack (outermost first) to a stage by its
    innermost mapped frame."""
    for module in reversed(module_names):
        best = ""
        for prefix in STAGE_MODULES:
            if module == prefix or module.startswith(prefix + "."):
                if len(prefix) > len(best):
                    best = prefix
        if best:
            return STAGE_MODULES[best]
    return OTHER_STAGE


class SamplingProfiler:
    """Samples one thread's stack on a wall-clock schedule.

    Parameters
    ----------
    interval:
        Seconds between samples.
    target_thread_id:
        ``threading.get_ident()`` of the thread to sample; defaults to
        the thread that calls :meth:`start`.
    max_depth:
        Frames retained per sample (innermost kept).

    Use as a context manager around the code to profile::

        with SamplingProfiler(interval=0.002) as profiler:
            pipeline.run()
        print(profiler.report())
    """

    def __init__(
        self,
        interval: float = 0.005,
        target_thread_id: Optional[int] = None,
        max_depth: int = 64,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.interval = interval
        self.max_depth = max_depth
        self._target = target_thread_id
        self._stacks: _TallyCounter = _TallyCounter()
        self._stage_samples: _TallyCounter = _TallyCounter()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.samples_taken = 0
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        if self._target is None:
            self._target = threading.get_ident()
        self._stop.clear()
        self.started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._sample_loop, name="ocep-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self.stopped_at = time.perf_counter()

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    def _sample_loop(self) -> None:
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(self._target)
            if frame is None:
                continue
            modules: List[str] = []
            stack: List[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                module = frame.f_globals.get("__name__", "?")
                stack.append(f"{module}:{frame.f_code.co_name}")
                modules.append(module)
                frame = frame.f_back
                depth += 1
            # Innermost-first while walking; collapsed format wants
            # outermost (root) first.
            stack.reverse()
            modules.reverse()
            self._stacks[tuple(stack)] += 1
            self._stage_samples[stage_of_stack(modules)] += 1
            self.samples_taken += 1

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def total_samples(self) -> int:
        return sum(self._stacks.values())

    def collapsed(self) -> List[str]:
        """Collapsed-stack lines (``frame;frame;... count``), most
        frequent first — feed to ``flamegraph.pl`` or speedscope."""
        return [
            ";".join(stack) + f" {count}"
            for stack, count in self._stacks.most_common()
        ]

    def stage_self_time(self) -> Dict[str, float]:
        """Fraction of samples attributed to each stage (exclusive
        time, innermost-mapped-frame rule); empty when no samples."""
        total = self.total_samples
        if total == 0:
            return {}
        return {
            stage: count / total
            for stage, count in sorted(
                self._stage_samples.items(), key=lambda kv: -kv[1]
            )
        }

    def hottest(self, limit: int = 10) -> List[Tuple[str, int]]:
        """The ``limit`` most-sampled leaf frames and their counts."""
        leaves: _TallyCounter = _TallyCounter()
        for stack, count in self._stacks.items():
            leaves[stack[-1]] += count
        return leaves.most_common(limit)

    def report(self, limit: int = 10) -> str:
        """Human-readable summary: stage split plus hottest frames."""
        total = self.total_samples
        lines = [f"{total} samples @ {self.interval * 1e3:.1f} ms"]
        if total == 0:
            lines.append("  (no samples — profiled section too short; "
                         "lower --interval)")
            return "\n".join(lines)
        lines.append("stage self time:")
        for stage, fraction in self.stage_self_time().items():
            lines.append(f"  {stage:<14} {fraction * 100:5.1f}%")
        lines.append(f"hottest frames (top {limit}):")
        for frame, count in self.hottest(limit):
            lines.append(f"  {count:>6}  {frame}")
        return "\n".join(lines)


__all__ = [
    "OTHER_STAGE",
    "STAGE_MODULES",
    "SamplingProfiler",
    "stage_of_stack",
]
