"""Structured logging: JSON lines, span-correlated, stdlib only.

The repo had no logging at all — failures surfaced only as exceptions
or metric counters.  This module layers a small structured logger over
:mod:`logging`:

* every ``ocep.*`` logger emits **one JSON object per line** through
  :class:`JsonLinesFormatter` — machine-greppable, no format strings
  to parse;
* records carry the id of the innermost open span of the bound
  :class:`~repro.obs.spans.SpanTracer` (``"span": <id>``), so a log
  line can be joined against the Perfetto timeline;
* any ``extra={...}`` fields passed at the call site land as
  top-level JSON keys.

Off by default: the ``ocep`` logger tree gets a ``NullHandler`` at
import, so library code can log unconditionally without spraying
stderr (and without the root logger's last-resort handler kicking in).
Call :func:`configure` to attach a real sink.

    >>> from repro.obs import log
    >>> handler = log.configure(stream=sys.stderr, tracer=tracer)
    >>> log.get_logger("poet.server").warning(
    ...     "client delivery failed", extra={"event": "e0.17"}
    ... )
    {"event": "e0.17", "level": "warning", "logger": "ocep.poet.server",
     "msg": "client delivery failed", "span": 42, "ts": 1754500000.1}
"""

from __future__ import annotations

import json
import logging
from typing import IO, Optional

from repro.obs.spans import NULL_TRACER, SpanTracer

#: Root of the library's logger tree.
ROOT_LOGGER = "ocep"

#: The tracer consulted for span correlation (module-global: the
#: pipeline is single-threaded and runs one tracer at a time).
_bound_tracer: SpanTracer = NULL_TRACER

#: LogRecord attributes that are plumbing, not payload.
_RESERVED = frozenset(
    vars(logging.makeLogRecord({})).keys()
) | {"message", "asctime", "taskName"}


def bind_tracer(tracer: Optional[SpanTracer]) -> None:
    """Bind the tracer whose innermost span id stamps every record
    (``None`` unbinds)."""
    global _bound_tracer
    _bound_tracer = tracer if tracer is not None else NULL_TRACER


class JsonLinesFormatter(logging.Formatter):
    """Formats a record as one sorted-key JSON object."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        span = _bound_tracer.current_span_id
        if span is not None:
            payload["span"] = span
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=repr)


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``ocep`` tree (``get_logger("poet.server")``
    -> ``ocep.poet.server``)."""
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def configure(
    stream: Optional[IO[str]] = None,
    path: Optional[str] = None,
    level: int = logging.INFO,
    tracer: Optional[SpanTracer] = None,
) -> logging.Handler:
    """Attach a JSON-lines handler to the ``ocep`` tree and return it
    (detach with :func:`unconfigure`).

    ``stream`` and ``path`` are mutually exclusive; with neither, the
    handler writes to stderr.  ``tracer`` forwards to
    :func:`bind_tracer`.
    """
    if stream is not None and path is not None:
        raise ValueError("configure() takes a stream or a path, not both")
    if tracer is not None:
        bind_tracer(tracer)
    handler: logging.Handler
    if path is not None:
        handler = logging.FileHandler(path, encoding="utf-8")
    else:
        handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonLinesFormatter())
    root = logging.getLogger(ROOT_LOGGER)
    root.addHandler(handler)
    root.setLevel(level)
    return handler


def unconfigure(handler: logging.Handler) -> None:
    """Detach a handler installed by :func:`configure` and unbind the
    tracer."""
    logging.getLogger(ROOT_LOGGER).removeHandler(handler)
    handler.close()
    bind_tracer(None)


# Library code logs unconditionally; without a configured handler the
# records must go nowhere (not to logging's last-resort stderr).
logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())
