"""ASCII process-time diagrams.

Renders a computation the way the paper draws its figures (e.g.
Figure 3): one horizontal line per trace, events in delivery order,
message arrows linking send/receive pairs, and optional highlighting of
a match's constituent events.

    >>> from repro.testing import Weaver
    >>> from repro.analysis.diagram import render_diagram
    >>> w = Weaver(2)
    >>> a = w.local(0, "A")
    >>> s, r = w.message(0, 1)
    >>> b = w.local(1, "B")
    >>> print(render_diagram(w.events, num_traces=2))  # doctest: +SKIP
    P0  A-----s
               \\
    P1          r-----B

The layout places every event in its global delivery column, so causal
order reads left to right and concurrency is visible as unlinked
vertical overlap.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Set

from repro.events.event import Event, EventId, EventKind


def render_diagram(
    events: Sequence[Event],
    num_traces: int,
    trace_names: Optional[Sequence[str]] = None,
    highlight: Optional[Iterable[Event]] = None,
    max_width: int = 110,
    label_types: bool = True,
) -> str:
    """Render events as an ASCII process-time diagram.

    Parameters
    ----------
    events:
        The events in delivery order (a linearization).
    num_traces:
        Number of traces (rows).
    trace_names:
        Optional row labels.
    highlight:
        Events to mark with ``*`` (e.g. one match's constituents).
    max_width:
        Truncate the diagram beyond this width (with an ellipsis).
    label_types:
        Print the first letter of each event's type at its position;
        otherwise every event is drawn as ``o``.
    """
    if num_traces <= 0:
        raise ValueError("need at least one trace")
    names = list(trace_names) if trace_names else [
        f"P{i}" for i in range(num_traces)
    ]
    if len(names) != num_traces:
        raise ValueError(f"got {len(names)} names for {num_traces} traces")

    highlighted: Set[EventId] = {
        e.event_id for e in (highlight or ())
    }

    # one column per event, in delivery order
    spacing = 3
    columns: Dict[EventId, int] = {}
    for position, event in enumerate(events):
        columns[event.event_id] = position * spacing

    width = min(max_width, (len(events) - 1) * spacing + 1) if events else 1
    label_width = max(len(n) for n in names) + 1

    rows = [[" "] * width for _ in range(num_traces)]
    truncated = False

    def put(row: int, col: int, ch: str) -> bool:
        nonlocal truncated
        if col >= width:
            truncated = True
            return False
        rows[row][col] = ch
        return True

    # trace lines between a trace's first and last event
    firsts: Dict[int, int] = {}
    lasts: Dict[int, int] = {}
    for event in events:
        col = columns[event.event_id]
        firsts.setdefault(event.trace, col)
        lasts[event.trace] = col
    for trace, first in firsts.items():
        for col in range(first, min(lasts[trace] + 1, width)):
            rows[trace][col] = "-"

    # message arrows: a diagonal of '\' or '/' between the endpoints'
    # rows at the receive column, plus a vertical bar when far apart
    arrow_rows = [[" "] * width for _ in range(num_traces)]
    for event in events:
        if event.kind is not EventKind.RECEIVE or event.partner is None:
            continue
        src_trace = event.partner.trace
        dst_trace = event.trace
        col = columns[event.event_id]
        if col - 1 < 0 or col - 1 >= width:
            continue
        step = 1 if dst_trace > src_trace else -1
        for row in range(src_trace + step, dst_trace, step):
            if col - 1 < width:
                arrow_rows[row][col - 1] = "|"

    # events last so they overwrite lines
    for event in events:
        col = columns[event.event_id]
        if event.event_id in highlighted:
            ch = "*"
        elif label_types and event.etype:
            ch = event.etype[0]
        else:
            ch = "o"
        put(event.trace, col, ch)

    lines = []
    for trace in range(num_traces):
        interline = "".join(arrow_rows[trace])
        if interline.strip():
            lines.append(" " * label_width + interline)
        lines.append(names[trace].ljust(label_width) + "".join(rows[trace]))
    if truncated:
        lines.append(" " * label_width + "... (truncated)")

    legend = []
    if highlighted:
        legend.append("* = match constituent")
    if label_types:
        legend.append("letters = event type initials")
    if legend:
        lines.append(" " * label_width + "(" + ", ".join(legend) + ")")
    return "\n".join(lines)
