"""Analysis toolkit: boxplot statistics, rendering, and experiment running.

The paper reports per-event matching times as boxplots (Figures 6-9)
and a quartile table (Figure 10).  This package computes the same
statistics — quartiles, the 1.5 x IQR whiskers, outliers — renders
ASCII boxplots and tables, and provides the harness the benchmark
suite uses to regenerate every figure.
"""

from repro.analysis.stats import BoxplotStats, compute_boxplot
from repro.analysis.boxplot import render_boxplots
from repro.analysis.diagram import render_diagram
from repro.analysis.export import causality_edges, to_dot
from repro.analysis.metrics import ComputationMetrics, compute_metrics, happens_before_graph
from repro.analysis.tables import format_table, quartile_table
from repro.analysis.runner import CaseResult, run_case, scaled
from repro.analysis.perf_trend import (
    Regression,
    build_trend,
    collect_indicators,
    diff_trends,
    load_trend,
    write_trend,
)

__all__ = [
    "BoxplotStats",
    "compute_boxplot",
    "render_boxplots",
    "render_diagram",
    "causality_edges",
    "to_dot",
    "ComputationMetrics",
    "compute_metrics",
    "happens_before_graph",
    "format_table",
    "quartile_table",
    "CaseResult",
    "run_case",
    "scaled",
    "Regression",
    "build_trend",
    "collect_indicators",
    "diff_trends",
    "load_trend",
    "write_trend",
]
