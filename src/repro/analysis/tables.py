"""Table formatting for experiment output.

``quartile_table`` reproduces the shape of the paper's Figure 10:
one row per test case with Q1 / Median / Q3 / Top-Whisker / Max of the
per-event detection time in microseconds.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.stats import BoxplotStats


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Fixed-width table with a header separator."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {columns}"
            )
    widths = [
        max(len(str(headers[c])), *(len(str(row[c])) for row in rows))
        if rows
        else len(str(headers[c]))
        for c in range(columns)
    ]
    def line(cells: Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(widths[c]) for c, cell in enumerate(cells))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def quartile_table(groups: Dict[str, BoxplotStats]) -> str:
    """The Figure-10 table: Q1 / Med / Q3 / Top Whisker / Max (us)."""
    headers = ["Test Case", "Q1", "Med", "Q3", "Top Whisker", "Max"]
    rows: List[List[str]] = []
    for label, stats in groups.items():
        rows.append(
            [
                label,
                f"{stats.q1:,.0f}",
                f"{stats.median:,.0f}",
                f"{stats.q3:,.0f}",
                f"{stats.top_whisker:,.0f}",
                f"{stats.maximum:,.0f}",
            ]
        )
    return format_table(headers, rows)
