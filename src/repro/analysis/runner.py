"""Experiment harness reproducing the paper's methodology.

Section V-B: "Each test case is executed until the number of events
generated exceeds one million.  We used the dump feature in POET to
save the collected trace-event data in a file.  The reload feature ...
allows us to reuse this file with the saved events passed to POET via
the same interface used to collect events from a running application.
... OCEP is executed with each set of trace-event data five times and
the average is used for the evaluation."

``run_case`` does exactly that shape: generate a workload's event
stream once (recording it), then replay it through a fresh monitor
``repetitions`` times, averaging the per-event wall time elementwise.
The default event budget is laptop-scale; set ``OCEP_FULL_SCALE=1``
for the paper's one-million-event runs or ``OCEP_EVENTS=<n>`` for an
explicit budget.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Callable, List, Optional, Sequence

from repro.analysis.stats import BoxplotStats, compute_boxplot
from repro.core.config import MatcherConfig
from repro.core.monitor import Monitor
from repro.events.event import Event

#: The paper's event budget per test case.
PAPER_SCALE = 1_000_000


def scaled(default: int) -> int:
    """Resolve the event budget from the environment.

    ``OCEP_EVENTS`` wins outright; ``OCEP_FULL_SCALE=1`` selects the
    paper's one million; otherwise ``default``.
    """
    explicit = os.environ.get("OCEP_EVENTS")
    if explicit:
        return int(explicit)
    if os.environ.get("OCEP_FULL_SCALE") == "1":
        return PAPER_SCALE
    return default


@dataclasses.dataclass
class CaseResult:
    """Outcome of one experiment configuration.

    ``timings_us`` holds the repetition-averaged per-terminating-event
    matching times in microseconds — the paper's metric.
    """

    label: str
    num_events: int
    timings_us: List[float]
    matches_reported: int
    subset_size: int
    history_size: int
    deadlocked: bool

    def stats(self) -> BoxplotStats:
        return compute_boxplot(self.timings_us)


def replay_through_monitor(
    events: Sequence[Event],
    pattern_source: str,
    trace_names: Sequence[str],
    repetitions: int = 3,
    config: Optional[MatcherConfig] = None,
) -> tuple:
    """Replay a recorded stream through fresh monitors (one batched
    engine pipeline per repetition), averaging the per-event timings
    elementwise; returns ``(timings, last_monitor)``."""
    from repro.engine.pipeline import Pipeline

    if repetitions < 1:
        raise ValueError(f"need at least one repetition, got {repetitions}")
    summed: Optional[List[float]] = None
    monitor: Optional[Monitor] = None
    for _ in range(repetitions):
        pipeline = Pipeline.replay(events, trace_names)
        monitor = pipeline.watch("replay", pattern_source, config=config)
        pipeline.run()
        timings = monitor.terminating_timings
        if summed is None:
            summed = list(timings)
        else:
            if len(timings) != len(summed):
                raise RuntimeError(
                    "nondeterministic replay: timing streams differ in length"
                )
            summed = [a + b for a, b in zip(summed, timings)]
    assert summed is not None and monitor is not None
    return [t / repetitions for t in summed], monitor


def run_case(
    label: str,
    build: Callable[[], object],
    pattern_source: str,
    max_events: Optional[int] = None,
    repetitions: int = 3,
    config: Optional[MatcherConfig] = None,
) -> CaseResult:
    """Run one experiment configuration.

    ``build`` returns a workload result object exposing ``kernel``,
    ``server`` and ``run(max_events)`` (all four case-study builders
    do).  The workload's stream is recorded once and replayed through
    ``repetitions`` fresh monitors.
    """
    from repro.engine.pipeline import Pipeline

    pipeline = Pipeline.for_workload(build())
    recorder = pipeline.record()
    result = pipeline.run(max_events=max_events)
    outcome = result.outcome

    timings, monitor = replay_through_monitor(
        recorder.events,
        pattern_source,
        pipeline.trace_names,
        repetitions=repetitions,
        config=config,
    )
    if not timings:
        raise RuntimeError(
            f"{label}: no terminating events — the workload produced no "
            "pattern-relevant activity"
        )
    stats = monitor.stats()
    return CaseResult(
        label=label,
        num_events=outcome.num_events,
        timings_us=[t * 1e6 for t in timings],
        matches_reported=stats.matches_reported,
        subset_size=stats.subset_size,
        history_size=stats.history_size,
        deadlocked=outcome.deadlocked,
    )
