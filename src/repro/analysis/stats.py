"""Boxplot statistics matching the paper's conventions.

Section V-C: "The centre rectangle spans the inter quartile range
(IQR), which is the likely range of variation, with the inner segment
representing the median.  The whisker marks are placed 1.5 x IQR above
the third quartile and below the first quartile, while the crosses
mark the outliers."  Whiskers are clamped to the most extreme samples
inside the 1.5 x IQR fences (the standard Tukey convention matching
the figures).
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Sequence


@dataclasses.dataclass(frozen=True)
class BoxplotStats:
    """Summary statistics of one sample group.

    All values are in the unit of the input samples (the benchmark
    harness uses microseconds, like the paper).
    """

    count: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    low_whisker: float
    top_whisker: float
    outliers: tuple
    mean: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile on pre-sorted data."""
    if not sorted_values:
        raise ValueError("cannot take a percentile of an empty sample")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = fraction * (len(sorted_values) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return sorted_values[lower]
    weight = position - lower
    return sorted_values[lower] * (1 - weight) + sorted_values[upper] * weight


def compute_boxplot(samples: Sequence[float]) -> BoxplotStats:
    """Compute Tukey boxplot statistics for one sample group."""
    if not samples:
        raise ValueError("cannot summarise an empty sample")
    ordered: List[float] = sorted(samples)
    q1 = _percentile(ordered, 0.25)
    median = _percentile(ordered, 0.50)
    q3 = _percentile(ordered, 0.75)
    iqr = q3 - q1
    low_fence = q1 - 1.5 * iqr
    high_fence = q3 + 1.5 * iqr

    inside = [v for v in ordered if low_fence <= v <= high_fence]
    low_whisker = inside[0] if inside else q1
    top_whisker = inside[-1] if inside else q3
    outliers = tuple(v for v in ordered if v < low_fence or v > high_fence)

    return BoxplotStats(
        count=len(ordered),
        minimum=ordered[0],
        q1=q1,
        median=median,
        q3=q3,
        maximum=ordered[-1],
        low_whisker=low_whisker,
        top_whisker=top_whisker,
        outliers=outliers,
        mean=sum(ordered) / len(ordered),
    )
