"""Perf-regression sentinel over the ``BENCH_*.json`` trajectory.

Every benchmark run writes a machine-readable ``BENCH_<name>.json``
under ``benchmarks/results/`` (git-tracked, so the history rides the
repo), but until now nothing *read* them back — a perf regression
only surfaced if a human compared numbers across PRs.  This module
closes the loop:

* :func:`collect_indicators` flattens every ``BENCH_*.json`` into
  named scalar **cost indicators** (medians/means of the boxplot
  groups, ``*_seconds`` wall times, ``*_overhead`` ratios) where
  *lower is better* for every one of them;
* :func:`build_trend` / :func:`write_trend` snapshot the indicators
  into ``BENCH_trend.json`` — the document a CI job regenerates and
  uploads each run;
* :func:`diff_trends` compares two trend documents and returns the
  indicators that regressed beyond a threshold; ``ocep perf diff
  --baseline`` turns a non-empty answer into exit status 1 (the CI
  gate).

The regression rule handles the two indicator shapes we emit:

* positive costs (durations): regressed when the relative increase
  exceeds ``threshold`` (``current/baseline - 1 > threshold``);
* near-zero ratios (overheads, which can legitimately be negative):
  regressed when the absolute increase crosses ``threshold`` into
  positive territory (``current > 0 and current - baseline >
  threshold``).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

#: Schema tag of a trend document.
TREND_SCHEMA = 1

#: File name of the trend snapshot (lives beside the BENCH files).
TREND_FILENAME = "BENCH_trend.json"

#: Top-level numeric fields treated as cost indicators, by suffix.
_COST_SUFFIXES: Tuple[str, ...] = ("_seconds", "_overhead", "_us")

#: Boxplot-group statistics carried into the trend.
_GROUP_STATS: Tuple[str, ...] = ("median", "mean")


@dataclasses.dataclass(frozen=True)
class Regression:
    """One indicator that got worse."""

    indicator: str
    baseline: float
    current: float

    @property
    def delta(self) -> float:
        return self.current - self.baseline

    @property
    def ratio(self) -> Optional[float]:
        if self.baseline > 0:
            return self.current / self.baseline
        return None

    def describe(self) -> str:
        if self.ratio is not None:
            return (
                f"{self.indicator}: {self.baseline:.6g} -> "
                f"{self.current:.6g} ({(self.ratio - 1) * 100:+.1f}%)"
            )
        return (
            f"{self.indicator}: {self.baseline:.6g} -> "
            f"{self.current:.6g} ({self.delta:+.6g})"
        )

    def as_dict(self) -> dict:
        return {
            "indicator": self.indicator,
            "baseline": self.baseline,
            "current": self.current,
            "delta": self.delta,
        }


def _iter_bench_files(results_dir: Path) -> Iterable[Path]:
    for path in sorted(results_dir.glob("BENCH_*.json")):
        if path.name != TREND_FILENAME:
            yield path


def _indicators_of(document: dict) -> Dict[str, float]:
    """Flatten one BENCH document into cost indicators."""
    bench = document.get("benchmark", "unknown")
    indicators: Dict[str, float] = {}
    for key, value in document.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        if key == "tolerance":
            continue
        if any(key.endswith(suffix) for suffix in _COST_SUFFIXES):
            indicators[f"{bench}/{key}"] = float(value)
    groups = document.get("groups")
    if isinstance(groups, dict):
        for group, stats in groups.items():
            if not isinstance(stats, dict):
                continue
            for stat in _GROUP_STATS:
                value = stats.get(stat)
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    indicators[f"{bench}/{group}/{stat}_us"] = float(value)
    return indicators


def collect_indicators(results_dir) -> Dict[str, float]:
    """Cost indicators of every ``BENCH_*.json`` under
    ``results_dir`` (unreadable files are skipped, not fatal: a
    benchmark suite mid-write must not break the sentinel)."""
    results_dir = Path(results_dir)
    indicators: Dict[str, float] = {}
    for path in _iter_bench_files(results_dir):
        try:
            document = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(document, dict):
            continue
        indicators.update(_indicators_of(document))
    return indicators


def build_trend(results_dir) -> dict:
    """The trend document: schema tag, source files, indicators."""
    results_dir = Path(results_dir)
    return {
        "schema": TREND_SCHEMA,
        "sources": [p.name for p in _iter_bench_files(results_dir)],
        "indicators": collect_indicators(results_dir),
    }


def write_trend(results_dir, output=None) -> Path:
    """Write ``BENCH_trend.json`` (into ``results_dir`` by default)."""
    results_dir = Path(results_dir)
    path = Path(output) if output is not None else results_dir / TREND_FILENAME
    document = build_trend(results_dir)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_trend(path) -> dict:
    """Load and validate a trend document."""
    document = json.loads(Path(path).read_text())
    if not isinstance(document, dict) or document.get("schema") != TREND_SCHEMA:
        raise ValueError(
            f"{path}: not a BENCH_trend document "
            f"(schema={document.get('schema') if isinstance(document, dict) else None!r})"
        )
    indicators = document.get("indicators")
    if not isinstance(indicators, dict):
        raise ValueError(f"{path}: trend document has no indicators map")
    return document


def diff_trends(
    baseline: dict,
    current: dict,
    threshold: float = 0.15,
) -> List[Regression]:
    """Indicators shared by both trends that regressed past
    ``threshold`` (see the module docstring for the rule), sorted
    worst first."""
    if threshold <= 0:
        raise ValueError(f"threshold must be > 0, got {threshold}")
    regressions: List[Regression] = []
    base = baseline["indicators"]
    cur = current["indicators"]
    for indicator in sorted(set(base) & set(cur)):
        before, after = float(base[indicator]), float(cur[indicator])
        if before > 0:
            regressed = after / before - 1.0 > threshold
        else:
            regressed = after > 0 and after - before > threshold
        if regressed:
            regressions.append(Regression(indicator, before, after))
    regressions.sort(
        key=lambda r: -(r.ratio if r.ratio is not None else 1.0 + r.delta)
    )
    return regressions


__all__ = [
    "Regression",
    "TREND_FILENAME",
    "TREND_SCHEMA",
    "build_trend",
    "collect_indicators",
    "diff_trends",
    "load_trend",
    "write_trend",
]
