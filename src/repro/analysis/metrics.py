"""Computation metrics over the happens-before DAG.

Characterises a recorded computation the way the evaluation section
characterises its workloads: how much communication, how much
concurrency, how long the causal critical path.  Built on networkx so
downstream users can keep analysing the exported graph.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

import networkx as nx

from repro.analysis.export import causality_edges
from repro.events.event import Event, EventKind


def happens_before_graph(events: Sequence[Event]) -> "nx.DiGraph":
    """The happens-before DAG (covering edges only; reachability gives
    the full relation).  Nodes are :class:`~repro.events.EventId`."""
    graph = nx.DiGraph()
    for event in events:
        graph.add_node(event.event_id, etype=event.etype, trace=event.trace)
    graph.add_edges_from(causality_edges(events))
    return graph


@dataclasses.dataclass(frozen=True)
class ComputationMetrics:
    """Summary statistics of one computation.

    Attributes
    ----------
    num_events, num_traces:
        Sizes.
    num_messages:
        Delivered messages (receive events with partners).
    critical_path:
        Length (in events) of the longest causal chain — the
        computation's inherent sequential depth.
    width:
        Size of the largest antichain lower bound estimated as
        ``num_events / critical_path`` rounded up... reported exactly
        via Mirsky/Dilworth on small graphs is exponential, so this is
        the standard average-width proxy.
    concurrency_ratio:
        Fraction of distinct event pairs that are concurrent —
        0 for a fully sequential computation, approaching 1 for fully
        independent traces.  Computed exactly (quadratic; intended for
        test-scale computations).
    events_per_trace:
        Event counts by trace.
    """

    num_events: int
    num_traces: int
    num_messages: int
    critical_path: int
    width: float
    concurrency_ratio: float
    events_per_trace: Dict[int, int]


def compute_metrics(
    events: Sequence[Event],
    num_traces: int,
    exact_concurrency_limit: Optional[int] = 2000,
) -> ComputationMetrics:
    """Compute :class:`ComputationMetrics` for a recorded stream.

    ``concurrency_ratio`` is exact but quadratic; streams longer than
    ``exact_concurrency_limit`` get ``float('nan')`` there (pass
    ``None`` to force the exact computation).
    """
    graph = happens_before_graph(events)
    critical = nx.dag_longest_path_length(graph) + 1 if events else 0

    messages = sum(
        1
        for event in events
        if event.kind is EventKind.RECEIVE and event.partner is not None
    )

    if events and (
        exact_concurrency_limit is None or len(events) <= exact_concurrency_limit
    ):
        concurrent = 0
        total = 0
        for i, a in enumerate(events):
            for b in events[i + 1 :]:
                total += 1
                if a.concurrent_with(b):
                    concurrent += 1
        ratio = concurrent / total if total else 0.0
    else:
        ratio = float("nan")

    per_trace: Dict[int, int] = {t: 0 for t in range(num_traces)}
    for event in events:
        per_trace[event.trace] += 1

    return ComputationMetrics(
        num_events=len(events),
        num_traces=num_traces,
        num_messages=messages,
        critical_path=critical,
        width=(len(events) / critical) if critical else 0.0,
        concurrency_ratio=ratio,
        events_per_trace=per_trace,
    )
