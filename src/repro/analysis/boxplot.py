"""ASCII boxplot rendering for the figure benchmarks.

Renders grouped boxplots in the style of the paper's Figures 6-9:
one row per group (e.g. per trace count), a shared horizontal scale,
the IQR box with the median tick, whiskers, and up to a few outlier
crosses — "We limited the number of outliers shown ... so that the IQR
and whisker marks are clearly shown."
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.stats import BoxplotStats


def render_boxplots(
    groups: Dict[str, BoxplotStats],
    width: int = 72,
    unit: str = "us",
    max_outliers: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render labelled boxplots on a shared scale.

    Parameters
    ----------
    groups:
        Ordered mapping of group label -> statistics.
    width:
        Plot area width in characters.
    unit:
        Unit label for the scale line.
    max_outliers:
        Outlier crosses drawn per row (the largest ones).
    """
    if not groups:
        raise ValueError("nothing to plot")

    # Scale to the whiskers (plus headroom) rather than the outliers,
    # mirroring the paper's "we limited the number of outliers shown so
    # that the IQR and whisker marks are clearly shown"; outliers
    # beyond the right edge are drawn as '>' markers there.
    hi = max(s.top_whisker for s in groups.values()) * 1.6
    lo = min(s.low_whisker for s in groups.values())
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    label_width = max(len(label) for label in groups)

    def col(value: float) -> int:
        return min(width - 1, max(0, int((value - lo) / span * (width - 1))))

    lines = []
    if title:
        lines.append(title)
    for label, stats in groups.items():
        row = [" "] * width
        for x in range(col(stats.low_whisker), col(stats.top_whisker) + 1):
            row[x] = "-"
        row[col(stats.low_whisker)] = "|"
        row[col(stats.top_whisker)] = "|"
        for x in range(col(stats.q1), col(stats.q3) + 1):
            row[x] = "="
        row[col(stats.q1)] = "["
        row[col(stats.q3)] = "]"
        row[col(stats.median)] = "#"
        for outlier in stats.outliers[-max_outliers:]:
            row[col(outlier)] = "x" if outlier <= hi else ">"
        lines.append(f"{label.rjust(label_width)} {''.join(row)}")

    scale = f"{lo:,.0f}{unit}".ljust(width // 2) + f"{hi:,.0f}{unit}".rjust(
        width - width // 2
    )
    lines.append(" " * (label_width + 1) + scale)
    return "\n".join(lines)
