"""Exporting computations for external tooling.

``to_dot`` renders the happens-before structure as a GraphViz digraph:
one subgraph rank per trace, program-order edges along each trace,
message edges between send/receive partners, and optional highlighting
of a match's constituent events.  The transitive closure is *not*
drawn (it follows from the drawn edges), so the output stays readable.

``causality_edges`` exposes the same minimal edge set programmatically
(e.g. for feeding networkx).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.events.event import Event, EventId, EventKind


def causality_edges(events: Sequence[Event]) -> List[Tuple[EventId, EventId]]:
    """The covering edges of happens-before: program order plus
    message partners.  Their transitive closure is the full relation."""
    edges: List[Tuple[EventId, EventId]] = []
    last_on_trace: Dict[int, EventId] = {}
    for event in events:
        previous = last_on_trace.get(event.trace)
        if previous is not None:
            edges.append((previous, event.event_id))
        last_on_trace[event.trace] = event.event_id
        if event.kind is EventKind.RECEIVE and event.partner is not None:
            edges.append((event.partner, event.event_id))
    return edges


def to_dot(
    events: Sequence[Event],
    num_traces: int,
    trace_names: Optional[Sequence[str]] = None,
    highlight: Optional[Iterable[Event]] = None,
    graph_name: str = "computation",
) -> str:
    """Render the computation as GraphViz DOT source."""
    names = list(trace_names) if trace_names else [
        f"P{i}" for i in range(num_traces)
    ]
    if len(names) != num_traces:
        raise ValueError(f"got {len(names)} names for {num_traces} traces")
    highlighted: Set[EventId] = {e.event_id for e in (highlight or ())}

    def node_id(eid: EventId) -> str:
        return f"e{eid.trace}_{eid.index}"

    lines = [f"digraph {graph_name} {{", "  rankdir=LR;", "  node [shape=box];"]

    by_trace: Dict[int, List[Event]] = {t: [] for t in range(num_traces)}
    for event in events:
        by_trace[event.trace].append(event)

    for trace in range(num_traces):
        if not by_trace[trace]:
            continue
        lines.append(f"  subgraph cluster_{trace} {{")
        lines.append(f'    label="{names[trace]}";')
        for event in by_trace[trace]:
            label = f"{event.etype}"
            if event.text:
                label += f"\\n{event.text}"
            attrs = [f'label="{label}"']
            if event.event_id in highlighted:
                attrs.append("style=filled")
                attrs.append('fillcolor="#ffd27f"')
            lines.append(f"    {node_id(event.event_id)} [{', '.join(attrs)}];")
        lines.append("  }")

    message_targets = {
        event.partner for event in events if event.partner is not None
    }
    for src, dst in causality_edges(events):
        style = ""
        if src in message_targets or dst.trace != src.trace:
            style = ' [style=dashed, color="#3366cc"]' if dst.trace != src.trace else ""
        lines.append(f"  {node_id(src)} -> {node_id(dst)}{style};")

    lines.append("}")
    return "\n".join(lines)
