"""Struct-of-arrays event store: flat columns instead of object rows.

The object :class:`~repro.events.store.EventStore` keeps one ``Event``
instance per collected event — at production volume that is millions of
slotted objects, each dragging a private clock, and an O(num_traces)
clock-dominance check on every append.  This module stores the same
information as parallel flat arrays, one set per trace:

* event identity is implicit (position ``p`` on trace ``t`` is event
  ``t.p+1``);
* ``etype``/``text`` are interned string ids;
* kinds are one byte each;
* clocks are epoch references into a shared
  :class:`~repro.clocks.encoded.ClockFrame` — the per-event clock
  storage is a single integer, and the append-time dominance check is
  O(1) whenever the epoch is unchanged (every non-receive event).

The flat layout is what makes GP/LS domain computation vectorizable:
:meth:`ArrayEventStore.clock_column` materializes a whole clock column
along a trace in one pass (as a numpy array when numpy is available),
and :meth:`ArrayEventStore.least_successors` answers batched LS queries
with a single ``searchsorted`` over it.  ``Event`` objects are
materialized lazily and only on access, so the hot ingest path never
builds them.
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Optional, Sequence, Tuple

try:  # numpy accelerates the batched column queries; pure-python works
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on minimal installs
    _np = None

# Module reference, not from-import: repro.clocks imports repro.events
# (this package) while initializing, so names are resolved at call time
# to break the cycle.
import repro.clocks.encoded as _encoded
from repro.events.event import Event, EventId, EventKind

#: Byte codes for :class:`EventKind` (array storage).
_KINDS: Tuple[EventKind, ...] = tuple(EventKind)
_KIND_CODE = {kind: code for code, kind in enumerate(_KINDS)}


class ArrayEventStore:
    """All events of a computation as per-trace flat arrays.

    Drop-in for :class:`~repro.events.store.EventStore` (same
    construction signature and query surface).  Events may carry
    :class:`~repro.clocks.encoded.EncodedClock` stamps (their frame is
    adopted, appends are O(1)) or full
    :class:`~repro.clocks.vector_clock.VectorClock` stamps (knowledge
    rows are interned on the fly, O(num_traces) per append).
    """

    def __init__(self, num_traces: int, trace_names: Optional[Sequence[str]] = None):
        if num_traces <= 0:
            raise ValueError(f"need at least one trace, got {num_traces}")
        if trace_names is not None and len(trace_names) != num_traces:
            raise ValueError(
                f"got {len(trace_names)} names for {num_traces} traces"
            )
        self._num_traces = num_traces
        self.trace_names: Tuple[str, ...] = tuple(
            trace_names[t] if trace_names else f"trace-{t}"
            for t in range(num_traces)
        )
        self._frame: Optional["_encoded.ClockFrame"] = None
        self._strings: List[str] = []
        self._string_ids: dict = {}
        self._etype = [array("q") for _ in range(num_traces)]
        self._text = [array("q") for _ in range(num_traces)]
        self._kind = [bytearray() for _ in range(num_traces)]
        self._lamport = [array("q") for _ in range(num_traces)]
        self._ptrace = [array("q") for _ in range(num_traces)]
        self._pindex = [array("q") for _ in range(num_traces)]
        self._epoch = [array("q") for _ in range(num_traces)]
        self._count = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def _intern_string(self, value: str) -> int:
        sid = self._string_ids.get(value)
        if sid is None:
            sid = len(self._strings)
            self._strings.append(value)
            self._string_ids[value] = sid
        return sid

    def _adopt_epoch(self, event: Event) -> int:
        """Epoch id of the event's clock in this store's frame."""
        clock = event.clock
        frame = self._frame
        if isinstance(clock, _encoded.EncodedClock):
            if frame is None:
                self._frame = clock.frame
                return clock.epoch
            if clock.frame is frame:
                return clock.epoch
        else:
            if frame is None:
                frame = self._frame = _encoded.ClockFrame(self._num_traces)
        # Foreign clock (full vector, or an encoded clock from another
        # frame): intern its knowledge row here.  O(num_traces).
        trace = event.trace
        comps = tuple(clock.components)
        row = comps[:trace] + (0,) + comps[trace + 1:]
        return self._frame.intern(row)

    def add(self, event: Event) -> None:
        """Append an event to its trace's columns.

        Validates what :class:`~repro.events.trace.Trace` validates —
        trace range, index contiguity, and clock dominance over the
        predecessor — but the dominance check costs O(1) instead of
        O(num_traces): unchanged epochs (every non-receive event) need
        no comparison, and epoch transitions hit the frame's
        certified-dominance set (see
        :meth:`~repro.clocks.encoded.ClockFrame.check_dominates`).
        """
        trace = event.trace
        if not 0 <= trace < self._num_traces:
            raise ValueError(
                f"event trace {trace} out of range "
                f"(store has {self._num_traces} traces)"
            )
        epochs = self._epoch[trace]
        expected = len(epochs) + 1
        if event.index != expected:
            raise ValueError(
                f"trace {trace}: expected event index {expected}, "
                f"got {event.index}"
            )
        epoch = self._adopt_epoch(event)
        if epochs and not self._frame.check_dominates(epochs[-1], epoch):
            raise ValueError(
                f"trace {trace}: clock of event {event.index} does not "
                f"dominate its predecessor's clock"
            )
        epochs.append(epoch)
        self._etype[trace].append(self._intern_string(event.etype))
        self._text[trace].append(self._intern_string(event.text))
        self._kind[trace].append(_KIND_CODE[event.kind])
        self._lamport[trace].append(event.lamport)
        partner = event.partner
        if partner is None:
            self._ptrace[trace].append(-1)
            self._pindex[trace].append(0)
        else:
            self._ptrace[trace].append(partner.trace)
            self._pindex[trace].append(partner.index)
        self._count += 1

    def add_batch(self, events: Sequence[Event]) -> None:
        """Append a contiguous slice of the linearization.

        Semantically identical to calling :meth:`add` per event — same
        validation, same error points — but the column handles, the
        string-interning tables, and the frame-identity check are bound
        once per slice instead of once per event: the struct-of-arrays
        counterpart of the server's batch-first delivery.  Events whose
        clock is not an encoded clock of the adopted frame fall back to
        the scalar path (which interns the foreign knowledge row).
        """
        etype_cols = self._etype
        text_cols = self._text
        kind_cols = self._kind
        lamport_cols = self._lamport
        ptrace_cols = self._ptrace
        pindex_cols = self._pindex
        epoch_cols = self._epoch
        string_ids = self._string_ids
        strings = self._strings
        kind_code = _KIND_CODE
        num_traces = self._num_traces
        encoded_clock = _encoded.EncodedClock
        frame = self._frame
        dominated = frame._dominated if frame is not None else None
        added = 0
        for event in events:
            clock = event.clock
            if frame is None or not (
                isinstance(clock, encoded_clock) and clock.frame is frame
            ):
                # First event (no frame adopted yet) or a foreign
                # clock: the scalar path handles adoption/interning.
                self._count += added
                added = 0
                self.add(event)
                frame = self._frame
                dominated = frame._dominated if frame is not None else None
                continue
            trace = event.trace
            if not 0 <= trace < num_traces:
                raise ValueError(
                    f"event trace {trace} out of range "
                    f"(store has {num_traces} traces)"
                )
            epochs = epoch_cols[trace]
            index = event.index
            if index != len(epochs) + 1:
                raise ValueError(
                    f"trace {trace}: expected event index "
                    f"{len(epochs) + 1}, got {index}"
                )
            epoch = clock.epoch
            if epochs:
                prev = epochs[-1]
                # Fast path: the transition was certified when the row
                # was produced (merge / transcode); unknown pairs fall
                # back to the frame's full dominance scan.
                if (
                    prev != epoch
                    and (prev, epoch) not in dominated
                    and not frame.check_dominates(prev, epoch)
                ):
                    raise ValueError(
                        f"trace {trace}: clock of event {index} does "
                        f"not dominate its predecessor's clock"
                    )
            epochs.append(epoch)
            value = event.etype
            sid = string_ids.get(value)
            if sid is None:
                sid = len(strings)
                strings.append(value)
                string_ids[value] = sid
            etype_cols[trace].append(sid)
            value = event.text
            sid = string_ids.get(value)
            if sid is None:
                sid = len(strings)
                strings.append(value)
                string_ids[value] = sid
            text_cols[trace].append(sid)
            kind_cols[trace].append(kind_code[event.kind])
            lamport_cols[trace].append(event.lamport)
            partner = event.partner
            if partner is None:
                ptrace_cols[trace].append(-1)
                pindex_cols[trace].append(0)
            else:
                ptrace_cols[trace].append(partner.trace)
                pindex_cols[trace].append(partner.index)
            added += 1
        self._count += added

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    @property
    def num_traces(self) -> int:
        """Number of traces in the computation."""
        return self._num_traces

    @property
    def num_events(self) -> int:
        """Total number of stored events across all traces."""
        return self._count

    @property
    def frame(self) -> Optional["_encoded.ClockFrame"]:
        """The shared knowledge-row table (``None`` until first add)."""
        return self._frame

    def trace(self, trace_id: int) -> "ArrayTraceView":
        """A sequence view of one trace's events."""
        if not 0 <= trace_id < self._num_traces:
            raise ValueError(
                f"trace {trace_id} out of range "
                f"(store has {self._num_traces} traces)"
            )
        return ArrayTraceView(self, trace_id)

    def traces(self) -> Sequence["ArrayTraceView"]:
        """All traces, ordered by trace id."""
        return tuple(ArrayTraceView(self, t) for t in range(self._num_traces))

    def get(self, event_id: EventId) -> Event:
        """Resolve an :class:`EventId` to a (materialized) event."""
        trace = event_id.trace
        if not 0 <= trace < self._num_traces:
            raise ValueError(
                f"event trace {trace} out of range "
                f"(store has {self._num_traces} traces)"
            )
        return self.materialize(trace, event_id.index)

    def partner_of(self, event: Event) -> Optional[Event]:
        """Resolve an event's communication partner, if recorded."""
        if event.partner is None:
            return None
        return self.get(event.partner)

    def materialize(self, trace: int, index: int) -> Event:
        """Rebuild the :class:`Event` at 1-based ``index`` on ``trace``."""
        n = len(self._epoch[trace])
        if not 1 <= index <= n:
            raise IndexError(
                f"trace {trace} has {n} events, index {index} out of range"
            )
        p = index - 1
        ptrace = self._ptrace[trace][p]
        partner = (
            EventId(ptrace, self._pindex[trace][p]) if ptrace >= 0 else None
        )
        return Event(
            trace=trace,
            index=index,
            etype=self._strings[self._etype[trace][p]],
            text=self._strings[self._text[trace][p]],
            clock=_encoded.EncodedClock(
                self._frame, trace, index, self._epoch[trace][p]
            ),
            kind=_KINDS[self._kind[trace][p]],
            partner=partner,
            lamport=self._lamport[trace][p],
        )

    # ------------------------------------------------------------------
    # Vectorizable clock-column queries (GP/LS substrate)
    # ------------------------------------------------------------------

    def clock_value(self, trace: int, position: int, column: int) -> int:
        """``V[column]`` of the event at 1-based ``position`` on
        ``trace`` — no Event materialization."""
        if column == trace:
            return position
        return self._frame.row(self._epoch[trace][position - 1])[column]

    def clock_column(self, trace: int, column: int):
        """The whole clock column ``V[column]`` along ``trace`` as a
        flat array (non-decreasing by construction).

        Returns a numpy array when numpy is installed, else a list.
        One gather over the epoch refs — this is the vectorized layout
        GP/LS domain computation wants, impossible with per-object
        clock tuples.
        """
        epochs = self._epoch[trace]
        if column == trace:
            if _np is not None:
                return _np.arange(1, len(epochs) + 1, dtype=_np.int64)
            return list(range(1, len(epochs) + 1))
        if self._frame is None:
            return _np.empty(0, dtype=_np.int64) if _np is not None else []
        rows = self._frame._rows
        if _np is not None:
            if not epochs:
                return _np.empty(0, dtype=_np.int64)
            row_column = _np.fromiter(
                (r[column] for r in rows), dtype=_np.int64, count=len(rows)
            )
            return row_column[_np.frombuffer(epochs, dtype=_np.int64)]
        return [rows[e][column] for e in epochs]

    def least_successors(self, trace: int, column: int, values):
        """Batched LS primitive: for each ``v`` in ``values``, the
        earliest 1-based position on ``trace`` whose clock column
        ``column`` has reached ``v`` (0 when none has).

        With numpy this is one ``searchsorted`` over the materialized
        column; the pure-python fallback bisects per value.
        """
        col = self.clock_column(trace, column)
        n = len(col)
        if _np is not None:
            positions = _np.searchsorted(col, _np.asarray(values), side="left") + 1
            positions[positions > n] = 0
            return positions
        out = []
        for v in values:
            lo, hi = 0, n
            while lo < hi:
                mid = (lo + hi) // 2
                if col[mid] >= v:
                    hi = mid
                else:
                    lo = mid + 1
            out.append(lo + 1 if lo < n else 0)
        return out

    # ------------------------------------------------------------------
    # Iteration / sizing
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[Event]:
        """Iterate all events, trace by trace (not a linearization)."""
        for trace in range(self._num_traces):
            for index in range(1, len(self._epoch[trace]) + 1):
                yield self.materialize(trace, index)

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:
        return f"ArrayEventStore({self._num_traces} traces, {self._count} events)"


class ArrayTraceView:
    """Sequence view over one trace of an :class:`ArrayEventStore`.

    Mirrors the query surface of :class:`~repro.events.trace.Trace`
    (``at``, ``last``, ``first_index_with_column_at_least``, length and
    iteration); events materialize lazily.
    """

    __slots__ = ("_store", "trace_id")

    def __init__(self, store: ArrayEventStore, trace_id: int):
        self._store = store
        self.trace_id = trace_id

    @property
    def name(self) -> str:
        return self._store.trace_names[self.trace_id]

    def at(self, index: int) -> Event:
        """Return the event with the given 1-based index."""
        if index < 1:
            raise IndexError(
                f"trace {self.trace_id} index {index} out of range "
                f"(indices are 1-based)"
            )
        return self._store.materialize(self.trace_id, index)

    def last(self) -> Optional[Event]:
        """The most recent event, or ``None`` for an empty trace."""
        n = len(self)
        return self._store.materialize(self.trace_id, n) if n else None

    def first_index_with_column_at_least(
        self, column: int, value: int
    ) -> Optional[int]:
        """Binary-search the earliest index whose clock[column] >= value
        (the least-successor primitive; see
        :meth:`~repro.events.trace.Trace.first_index_with_column_at_least`)."""
        position = self._store.least_successors(self.trace_id, column, [value])[0]
        return int(position) if position else None

    def __len__(self) -> int:
        return len(self._store._epoch[self.trace_id])

    def __iter__(self) -> Iterator[Event]:
        for index in range(1, len(self) + 1):
            yield self._store.materialize(self.trace_id, index)

    def __repr__(self) -> str:
        return f"ArrayTraceView({self.trace_id}, {self.name!r}, {len(self)} events)"


#: Selectable event-store layouts (POETServer / Pipeline).
EVENT_STORES: Tuple[str, ...] = ("object", "array")


def make_event_store(
    layout: str, num_traces: int, trace_names: Optional[Sequence[str]] = None
):
    """Build the event store named by ``layout``."""
    if layout == "object":
        from repro.events.store import EventStore

        return EventStore(num_traces, trace_names)
    if layout == "array":
        return ArrayEventStore(num_traces, trace_names)
    raise ValueError(
        f"unknown event store layout {layout!r}; known: {EVENT_STORES}"
    )


__all__ = [
    "EVENT_STORES",
    "ArrayEventStore",
    "ArrayTraceView",
    "make_event_store",
]
