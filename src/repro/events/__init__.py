"""The event model: primitive events, traces, stores, compound events.

Paper Section III: a distributed computation is a finite set of
sequential processes communicating only by message passing.  The
occurrences of actions performed by each local algorithm are *events*;
events on one trace are totally ordered, events on different traces are
only partially ordered by Lamport's happens-before relation.

A *trace* is "any relevant entity with sequential behaviour, such as a
process or a thread, but may include passive entities such as an object
or a communication channel" — the atomicity case study (Section V-C3)
relies on semaphores being modelled as separate traces.

*Compound events* are non-empty sets of causally related primitive
events; their relations (overlap, cross, entanglement, weak/strong
precedence) follow Nichols' framework as summarised in Section III-B.
"""

from repro.events.event import Event, EventId, EventKind, event_from_record
from repro.events.trace import Trace
from repro.events.store import EventStore
from repro.events.soa import EVENT_STORES, ArrayEventStore, make_event_store
from repro.events.compound import (
    CompoundEvent,
    compound_concurrent,
    compound_precedes,
    crosses,
    disjoint,
    entangled,
    overlaps,
    strong_precedes,
    weak_precedes,
)

__all__ = [
    "Event",
    "EventId",
    "EventKind",
    "event_from_record",
    "Trace",
    "EventStore",
    "EVENT_STORES",
    "ArrayEventStore",
    "make_event_store",
    "CompoundEvent",
    "overlaps",
    "disjoint",
    "crosses",
    "entangled",
    "weak_precedes",
    "strong_precedes",
    "compound_precedes",
    "compound_concurrent",
]
