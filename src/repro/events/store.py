"""Event store: all traces of one monitored computation.

This is the core data structure POET keeps server-side — "a set of
events grouped by traces and the partial-order relationships among
those events" (paper, Section V-A).  The matcher-side structures
(pattern-tree histories, causal index) are derived from the stream of
events the store delivers; they do not require the full store.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.events.event import Event, EventId
from repro.events.trace import Trace


class EventStore:
    """All events of a computation, grouped by trace.

    Parameters
    ----------
    num_traces:
        Number of traces (fixed for the lifetime of the computation —
        vector clock width).
    trace_names:
        Optional human-readable names, one per trace.
    """

    def __init__(self, num_traces: int, trace_names: Optional[Sequence[str]] = None):
        if num_traces <= 0:
            raise ValueError(f"need at least one trace, got {num_traces}")
        if trace_names is not None and len(trace_names) != num_traces:
            raise ValueError(
                f"got {len(trace_names)} names for {num_traces} traces"
            )
        self._traces: List[Trace] = [
            Trace(i, trace_names[i] if trace_names else None)
            for i in range(num_traces)
        ]
        self._count = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, event: Event) -> None:
        """Append an event to its trace (validated by the trace)."""
        if not 0 <= event.trace < len(self._traces):
            raise ValueError(
                f"event trace {event.trace} out of range "
                f"(store has {len(self._traces)} traces)"
            )
        self._traces[event.trace].append(event)
        self._count += 1

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    @property
    def num_traces(self) -> int:
        """Number of traces in the computation."""
        return len(self._traces)

    @property
    def num_events(self) -> int:
        """Total number of stored events across all traces."""
        return self._count

    def trace(self, trace_id: int) -> Trace:
        """Return the :class:`Trace` with the given id."""
        return self._traces[trace_id]

    def traces(self) -> Sequence[Trace]:
        """All traces, ordered by trace id."""
        return tuple(self._traces)

    def get(self, event_id: EventId) -> Event:
        """Resolve an :class:`EventId` to the stored event."""
        return self._traces[event_id.trace].at(event_id.index)

    def partner_of(self, event: Event) -> Optional[Event]:
        """Resolve an event's communication partner, if recorded."""
        if event.partner is None:
            return None
        return self.get(event.partner)

    def __iter__(self) -> Iterator[Event]:
        """Iterate all events, trace by trace (not a linearization)."""
        for trace in self._traces:
            yield from trace

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:
        return f"EventStore({self.num_traces} traces, {self._count} events)"
