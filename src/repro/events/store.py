"""Event store: all traces of one monitored computation.

This is the core data structure POET keeps server-side — "a set of
events grouped by traces and the partial-order relationships among
those events" (paper, Section V-A).  The matcher-side structures
(pattern-tree histories, causal index) are derived from the stream of
events the store delivers; they do not require the full store.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.events.event import Event, EventId
from repro.events.trace import Trace


class EventStore:
    """All events of a computation, grouped by trace.

    Parameters
    ----------
    num_traces:
        Number of traces (fixed for the lifetime of the computation —
        vector clock width).
    trace_names:
        Optional human-readable names, one per trace.
    """

    def __init__(self, num_traces: int, trace_names: Optional[Sequence[str]] = None):
        if num_traces <= 0:
            raise ValueError(f"need at least one trace, got {num_traces}")
        if trace_names is not None and len(trace_names) != num_traces:
            raise ValueError(
                f"got {len(trace_names)} names for {num_traces} traces"
            )
        self._traces: List[Trace] = [
            Trace(i, trace_names[i] if trace_names else None)
            for i in range(num_traces)
        ]
        self._count = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, event: Event) -> None:
        """Append an event to its trace (validated by the trace)."""
        if not 0 <= event.trace < len(self._traces):
            raise ValueError(
                f"event trace {event.trace} out of range "
                f"(store has {len(self._traces)} traces)"
            )
        self._traces[event.trace].append(event)
        self._count += 1

    def add_batch(self, events) -> None:
        """Append a contiguous slice of the linearization.

        A convenience loop over :meth:`add` — the store protocol the
        server's batch-first delivery targets; the struct-of-arrays
        store (:class:`~repro.events.soa.ArrayEventStore`) overrides it
        with a columnar fast path.
        """
        add = self.add
        for event in events:
            add(event)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    @property
    def num_traces(self) -> int:
        """Number of traces in the computation."""
        return len(self._traces)

    @property
    def num_events(self) -> int:
        """Total number of stored events across all traces."""
        return self._count

    def trace(self, trace_id: int) -> Trace:
        """Return the :class:`Trace` with the given id.

        Raises
        ------
        ValueError
            If ``trace_id`` is out of range.  (A negative id would
            silently wrap to a trace at the other end of the store
            under list indexing.)
        """
        if not 0 <= trace_id < len(self._traces):
            raise ValueError(
                f"trace {trace_id} out of range "
                f"(store has {len(self._traces)} traces)"
            )
        return self._traces[trace_id]

    def traces(self) -> Sequence[Trace]:
        """All traces, ordered by trace id."""
        return tuple(self._traces)

    def get(self, event_id: EventId) -> Event:
        """Resolve an :class:`EventId` to the stored event.

        The trace is range-checked (not merely looked up), so a
        corrupted or hand-built id with a negative trace raises
        ``ValueError`` instead of silently wrapping to the last trace.
        """
        trace = event_id.trace
        if not 0 <= trace < len(self._traces):
            raise ValueError(
                f"event trace {trace} out of range "
                f"(store has {len(self._traces)} traces)"
            )
        return self._traces[trace].at(event_id.index)

    def partner_of(self, event: Event) -> Optional[Event]:
        """Resolve an event's communication partner, if recorded."""
        if event.partner is None:
            return None
        return self.get(event.partner)

    def __iter__(self) -> Iterator[Event]:
        """Iterate all events, trace by trace (not a linearization)."""
        for trace in self._traces:
            yield from trace

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:
        return f"EventStore({self.num_traces} traces, {self._count} events)"
