"""Compound events and their causal relations.

A compound event is a non-empty set of causally related primitive
events (paper, Section III-B).  Relations between compound events are
defined from the relations between their constituent primitive events:

* strong precedence  ``A >> B  <=>  forall a, b: a -> b``  (Lamport)
* weak precedence    ``A -> B  <=>  exists a, b: a -> b``
* overlap            ``A and B share a primitive event``
* disjoint           ``A and B share no primitive event``
* crosses            ``exists a0,a1 in A, b0,b1 in B: a0 -> b0 and
  b1 -> a1``, with A and B disjoint
* entanglement (eq. 1)   ``A <-> B  <=>  A crosses B  or  A overlaps B``
* precedence (eq. 2)     ``A -> B  <=>  (exists a,b: a -> b) and
  not (A <-> B)``
* concurrency (eq. 3)    ``A || B  <=>  forall a, b: a || b``

With entanglement included, any two compound events stand in exactly
one of the four relations A -> B, B -> A, A || B, A <-> B.  The module
offers both free functions over plain collections of events and a
:class:`CompoundEvent` value type with operator sugar.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator

from repro.events.event import Event


def _as_sets(a: Iterable[Event], b: Iterable[Event]):
    sa, sb = frozenset(a), frozenset(b)
    if not sa or not sb:
        raise ValueError("compound events must be non-empty")
    return sa, sb


def overlaps(a: Iterable[Event], b: Iterable[Event]) -> bool:
    """``A overlaps B <=> A ∩ B != ∅``."""
    sa, sb = _as_sets(a, b)
    return bool(sa & sb)


def disjoint(a: Iterable[Event], b: Iterable[Event]) -> bool:
    """``A is disjoint from B <=> A ∩ B = ∅``."""
    return not overlaps(a, b)


def crosses(a: Iterable[Event], b: Iterable[Event]) -> bool:
    """Some A-event precedes a B-event *and* some B-event precedes an
    A-event, while the sets are disjoint."""
    sa, sb = _as_sets(a, b)
    if sa & sb:
        return False
    forward = any(x.happens_before(y) for x in sa for y in sb)
    backward = any(y.happens_before(x) for x in sa for y in sb)
    return forward and backward


def entangled(a: Iterable[Event], b: Iterable[Event]) -> bool:
    """Equation (1): ``A <-> B  <=>  A crosses B or A overlaps B``."""
    sa, sb = _as_sets(a, b)
    return overlaps(sa, sb) or crosses(sa, sb)


def weak_precedes(a: Iterable[Event], b: Iterable[Event]) -> bool:
    """``exists a in A, b in B: a -> b``."""
    sa, sb = _as_sets(a, b)
    return any(x.happens_before(y) for x in sa for y in sb)


def strong_precedes(a: Iterable[Event], b: Iterable[Event]) -> bool:
    """``forall a in A, b in B: a -> b`` (Lamport's strong precedence)."""
    sa, sb = _as_sets(a, b)
    return all(x.happens_before(y) for x in sa for y in sb)


def compound_precedes(a: Iterable[Event], b: Iterable[Event]) -> bool:
    """Equation (2): weak precedence without entanglement.

    Equivalently for disjoint sets: some A-event precedes some B-event
    and *no* B-event precedes any A-event.
    """
    sa, sb = _as_sets(a, b)
    return weak_precedes(sa, sb) and not entangled(sa, sb)


def compound_concurrent(a: Iterable[Event], b: Iterable[Event]) -> bool:
    """Equation (3): ``forall a in A, b in B: a || b``."""
    sa, sb = _as_sets(a, b)
    return all(x.concurrent_with(y) for x in sa for y in sb)


class CompoundEvent:
    """A non-empty frozen set of primitive events with relation sugar.

    Examples
    --------
    Given compound events ``A`` and ``B``::

        A.precedes(B)       # equation (2)
        A.concurrent(B)     # equation (3)
        A.entangled(B)      # equation (1)
        A.classify(B)       # exactly one of '->', '<-', '||', '<->'
    """

    __slots__ = ("_events",)

    def __init__(self, events: Iterable[Event]):
        self._events: FrozenSet[Event] = frozenset(events)
        if not self._events:
            raise ValueError("compound events must be non-empty")

    @property
    def events(self) -> FrozenSet[Event]:
        """The constituent primitive events."""
        return self._events

    def overlaps(self, other: "CompoundEvent") -> bool:
        return overlaps(self._events, other._events)

    def is_disjoint_from(self, other: "CompoundEvent") -> bool:
        return disjoint(self._events, other._events)

    def crosses(self, other: "CompoundEvent") -> bool:
        return crosses(self._events, other._events)

    def entangled(self, other: "CompoundEvent") -> bool:
        return entangled(self._events, other._events)

    def weak_precedes(self, other: "CompoundEvent") -> bool:
        return weak_precedes(self._events, other._events)

    def strong_precedes(self, other: "CompoundEvent") -> bool:
        return strong_precedes(self._events, other._events)

    def precedes(self, other: "CompoundEvent") -> bool:
        return compound_precedes(self._events, other._events)

    def concurrent(self, other: "CompoundEvent") -> bool:
        return compound_concurrent(self._events, other._events)

    def classify(self, other: "CompoundEvent") -> str:
        """Return exactly one of ``'->'``, ``'<-'``, ``'||'``, ``'<->'``.

        The four relations are mutually exclusive and exhaustive over
        pairs of compound events once entanglement is included
        (paper, Section III-B).
        """
        if self.entangled(other):
            return "<->"
        if self.precedes(other):
            return "->"
        if other.precedes(self):
            return "<-"
        return "||"

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __contains__(self, event: object) -> bool:
        return event in self._events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CompoundEvent):
            return self._events == other._events
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._events)

    def __repr__(self) -> str:
        ids = ", ".join(sorted(str(e.event_id) for e in self._events))
        return f"CompoundEvent({{{ids}}})"
