"""Per-trace total order of events.

Each process (or other sequential entity) is represented as a
:class:`Trace`: an append-only, totally ordered sequence of events
whose indices run 1, 2, 3, ...  The class validates the per-trace clock
monotonicity invariants on every append, which catches substrate bugs
early instead of letting them surface as wrong match results.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.events.event import Event


class Trace:
    """An append-only totally ordered event sequence for one trace.

    Parameters
    ----------
    trace_id:
        The trace number, matching ``Event.trace`` of every appended
        event.
    name:
        Optional human-readable name (e.g. ``"leader"`` or ``"sem:0"``).
    """

    __slots__ = ("trace_id", "name", "_events")

    def __init__(self, trace_id: int, name: Optional[str] = None):
        if trace_id < 0:
            raise ValueError(f"trace id must be >= 0, got {trace_id}")
        self.trace_id = trace_id
        self.name = name if name is not None else f"trace-{trace_id}"
        self._events: List[Event] = []

    def append(self, event: Event) -> None:
        """Append the next event of this trace.

        Raises
        ------
        ValueError
            If the event belongs to another trace, skips an index, or
            its clock does not dominate its predecessor's clock.
        """
        if event.trace != self.trace_id:
            raise ValueError(
                f"event on trace {event.trace} appended to trace {self.trace_id}"
            )
        expected = len(self._events) + 1
        if event.index != expected:
            raise ValueError(
                f"trace {self.trace_id}: expected event index {expected}, "
                f"got {event.index}"
            )
        if self._events and not (self._events[-1].clock <= event.clock):
            raise ValueError(
                f"trace {self.trace_id}: clock of event {event.index} does not "
                f"dominate its predecessor's clock"
            )
        self._events.append(event)

    def at(self, index: int) -> Event:
        """Return the event with the given 1-based index."""
        if not 1 <= index <= len(self._events):
            raise IndexError(
                f"trace {self.trace_id} has {len(self._events)} events, "
                f"index {index} out of range"
            )
        return self._events[index - 1]

    def last(self) -> Optional[Event]:
        """The most recent event, or ``None`` for an empty trace."""
        return self._events[-1] if self._events else None

    def first_index_with_column_at_least(self, column: int, value: int) -> Optional[int]:
        """Binary-search the earliest index whose clock[column] >= value.

        The per-trace clock columns are non-decreasing (clocks only ever
        merge forward), so this is well-defined.  This is the primitive
        behind least-successor queries: the least successor of an event
        ``a`` (on trace ``m``, index ``i``) on this trace is the first
        event here whose clock column ``m`` reaches ``i``.

        Returns ``None`` when no event on this trace has reached the
        value yet.
        """
        lo, hi = 0, len(self._events)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._events[mid].clock[column] >= value:
                hi = mid
            else:
                lo = mid + 1
        if lo == len(self._events):
            return None
        return lo + 1  # back to 1-based indices

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __repr__(self) -> str:
        return f"Trace({self.trace_id}, {self.name!r}, {len(self._events)} events)"
