"""Primitive events.

An event is "a state transition in the system, often a result of
receiving or sending a message" (paper, Section I).  Every event
carries:

* the trace it occurred on and its 1-based index on that trace (these
  two integers are the event's identity);
* an event *type* and free-form *text* attribute — the three fields a
  pattern class ``[process, type, text]`` matches against;
* its vector timestamp, assigned by the tracing substrate;
* a kind (send / receive / local / unary) and, for point-to-point
  communication events, the identity of the partner event.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

from repro.clocks.causality import Ordering, compare, happens_before
from repro.clocks.vector_clock import VectorClock


class EventKind(enum.Enum):
    """Communication role of an event.

    POET distinguishes unary (purely local) events from the send and
    receive halves of point-to-point communication.  ``LOCAL`` is an
    alias role for unary events that represent internal computation
    steps; ``UNARY`` is used for instrumented activities of interest
    (the things patterns usually match).
    """

    SEND = "send"
    RECEIVE = "receive"
    LOCAL = "local"
    UNARY = "unary"

    @property
    def is_communication(self) -> bool:
        """True for the send/receive halves of a message."""
        return self in (EventKind.SEND, EventKind.RECEIVE)


@dataclasses.dataclass(frozen=True, order=True, slots=True)
class EventId:
    """Identity of an event: its trace and 1-based index on that trace.

    The lexicographic order on (trace, index) is arbitrary but total,
    which is all the matcher needs for tie-breaking.
    """

    trace: int
    index: int

    def __post_init__(self) -> None:
        if self.trace < 0:
            raise ValueError(f"trace must be >= 0, got {self.trace}")
        if self.index < 1:
            raise ValueError(f"event index is 1-based, got {self.index}")

    def __repr__(self) -> str:
        return f"e{self.trace}.{self.index}"


@dataclasses.dataclass(frozen=True, slots=True)
class Event:
    """An immutable primitive event.

    Slotted: every event of the computation lives in the server store,
    the leaf histories, and the hold-back buffer at once, so dropping
    the per-instance ``__dict__`` measurably shrinks and speeds up the
    hot path (``benchmarks/test_slots_overhead.py`` records the
    before/after medians in ``BENCH_slots.json``).

    Attributes
    ----------
    trace:
        Trace number the event occurred on (0-based).
    index:
        1-based position of the event on its trace.  Under the clock
        convention used here, ``clock[trace] == index`` always holds.
    etype:
        The event type, e.g. ``"Send"`` or ``"Take_Snapshot"``.
    text:
        Free-form text attribute; patterns use it for exact match,
        wildcarding, or attribute-variable binding.
    clock:
        The event's Fidge/Mattern vector timestamp.
    kind:
        Communication role (send / receive / local / unary).
    partner:
        For point-to-point communication events, the :class:`EventId`
        of the matching send/receive; ``None`` otherwise.
    lamport:
        Lamport scalar time, used by the POET linearizer as a
        causality-consistent delivery key.
    """

    trace: int
    index: int
    etype: str
    text: str
    clock: VectorClock
    kind: EventKind = EventKind.UNARY
    partner: Optional[EventId] = None
    lamport: int = 0

    def __post_init__(self) -> None:
        if self.index < 1:
            raise ValueError(f"event index is 1-based, got {self.index}")
        if self.trace < 0 or self.trace >= len(self.clock):
            raise ValueError(
                f"trace {self.trace} out of range for clock width {len(self.clock)}"
            )
        if self.clock[self.trace] != self.index:
            raise ValueError(
                f"clock own-component {self.clock[self.trace]} does not match "
                f"event index {self.index}"
            )
        if self.partner is not None and not self.kind.is_communication:
            raise ValueError(f"{self.kind} events cannot have a partner")

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    @property
    def event_id(self) -> EventId:
        """The (trace, index) identity of this event."""
        return EventId(self.trace, self.index)

    # ------------------------------------------------------------------
    # Causality
    # ------------------------------------------------------------------

    def happens_before(self, other: "Event") -> bool:
        """True when ``self -> other`` (strict happens-before)."""
        return happens_before(self.clock, self.trace, other.clock, other.trace)

    def concurrent_with(self, other: "Event") -> bool:
        """True when the two events are distinct and causally unrelated."""
        return self.relation(other) is Ordering.CONCURRENT

    def relation(self, other: "Event") -> Ordering:
        """Classify the causal relation between two events."""
        return compare(self.clock, self.trace, other.clock, other.trace)

    def is_partner_of(self, other: "Event") -> bool:
        """True when the two events are the halves of one message.

        Partner identity is recorded on the receive side (the tracer
        only learns the pairing when the message is consumed), so a
        send/receive pair matches when the receive names the send.
        """
        if self.kind is EventKind.RECEIVE and other.kind is EventKind.SEND:
            return self.partner == other.event_id
        if self.kind is EventKind.SEND and other.kind is EventKind.RECEIVE:
            return other.partner == self.event_id
        return False

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Event):
            return self.trace == other.trace and self.index == other.index
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.trace, self.index))

    def __repr__(self) -> str:
        return (
            f"Event(e{self.trace}.{self.index}, {self.etype!r}, "
            f"{self.text!r}, {self.kind.value})"
        )

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------

    def to_record(self) -> dict:
        """JSON-ready record of this event (the POET dump field layout,
        shared by dump files and monitor checkpoints)."""
        record = {
            "t": self.trace,
            "i": self.index,
            "y": self.etype,
            "x": self.text,
            "c": list(self.clock.components),
            "k": self.kind.value,
            "l": self.lamport,
        }
        if self.partner is not None:
            record["p"] = [self.partner.trace, self.partner.index]
        return record


def event_from_record(record: dict) -> Event:
    """Rebuild an :class:`Event` from a :meth:`Event.to_record` dict.

    Raises the underlying ``KeyError``/``ValueError``/``TypeError`` on
    malformed input; callers that read untrusted data (the dump loader,
    the checkpoint loader) wrap this with their own typed errors.
    """
    partner = None
    if "p" in record:
        partner = EventId(trace=record["p"][0], index=record["p"][1])
    return Event(
        trace=record["t"],
        index=record["i"],
        etype=str(record["y"]),
        text=str(record["x"]),
        clock=VectorClock(record["c"]),
        kind=EventKind(record["k"]),
        partner=partner,
        lamport=record["l"],
    )
