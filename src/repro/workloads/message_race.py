"""All-to-one message-race benchmark.

Section V-C2: "We use a benchmark program in which all processes but
one concurrently send messages to the remaining process while the
latter accepts them using a blocking receive with the
``MPI_ANY_SOURCE`` wild-card."

Messages from different senders are causally unordered, so every pair
of them received by the collector races — nondeterministic arrival
order that "may lead to sporadically occurring errors that are
difficult to reproduce".  OCEP detects a race as a pair of concurrent
sends whose receives land on the same process.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.poet.instrument import instrument
from repro.poet.server import POETServer
from repro.simulation.kernel import ANY_SOURCE, Kernel, SimulationResult
from repro.simulation.mpi import MPIContext


@dataclasses.dataclass
class MessageRaceResult:
    """A built (not yet run) message-race workload."""

    kernel: Kernel
    server: POETServer
    num_traces: int
    collector: int

    def run(self, max_events: Optional[int] = None) -> SimulationResult:
        return self.kernel.run(max_events=max_events)


def build_message_race(
    num_traces: int,
    seed: int = 0,
    messages_per_sender: int = 50,
    verify_delivery: bool = False,
    clock_backend: str = "fidge",
) -> MessageRaceResult:
    """Build the message-race case-study workload.

    Rank 0 is the collector; ranks 1..n-1 each send
    ``messages_per_sender`` messages interleaved with local computation
    events, and the collector consumes them with ``ANY_SOURCE``.
    """
    if num_traces < 3:
        raise ValueError(
            f"a race needs >= 2 senders plus a collector, got {num_traces}"
        )

    kernel = Kernel(
        num_processes=num_traces,
        seed=seed,
        buffer_capacity=None,
        clock_backend=clock_backend,
    )
    server = instrument(kernel, verify=verify_delivery)
    collector = 0
    total_messages = (num_traces - 1) * messages_per_sender

    def collector_body(mpi: MPIContext):
        for _ in range(total_messages):
            msg = yield mpi.recv(source=ANY_SOURCE)
            yield mpi.emit("Handle", text=str(msg.payload))

    def sender_body(mpi: MPIContext):
        rng = mpi.rng
        for i in range(messages_per_sender):
            yield mpi.emit("Compute", text=str(i))
            yield mpi.sleep(rng.random())
            yield mpi.send(collector, text=f"to{collector}", payload=(mpi.rank, i))

    kernel.spawn(
        collector, lambda proc: collector_body(MPIContext(proc, num_traces))
    )
    for rank in range(1, num_traces):
        kernel.spawn(
            rank, lambda proc, _s=num_traces: sender_body(MPIContext(proc, _s))
        )

    return MessageRaceResult(
        kernel=kernel, server=server, num_traces=num_traces, collector=collector
    )
