"""Semaphore-protected method with a broken acquire.

Section V-C3: "We demonstrate this with a μC++ program that has a
method protected by a semaphore so that there is never more than one
thread executing it.  There is an intentional bug for which, when a
thread attempts to execute the method, the semaphore will not be
acquired properly with 1% probability. ... We also monitor the
synchronization primitives as separate traces, which allows us to
represent an atomicity violation as a causal pattern."

The semaphore is a kernel-level object with its own trace; a proper
acquire/release pair threads the critical section through the
semaphore trace, causally ordering it against every other properly
locked section.  A bypassed acquire leaves the section's ``Access``
event concurrent with other sections' — the violation the pattern
``X || Y`` over ``Access`` events detects.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.poet.instrument import instrument
from repro.poet.server import POETServer
from repro.simulation.kernel import Kernel, SimulationResult
from repro.simulation.process import Proc
from repro.simulation.ucpp import Semaphore


@dataclasses.dataclass
class AtomicityResult:
    """A built (not yet run) atomicity workload.

    ``bypasses`` records ground truth: ``(process, iteration)`` of
    every injected broken acquire, appended as the simulation runs.
    """

    kernel: Kernel
    server: POETServer
    num_traces: int
    bypasses: List[Tuple[int, int]]

    def run(self, max_events: Optional[int] = None) -> SimulationResult:
        return self.kernel.run(max_events=max_events)


def build_atomicity(
    num_processes: int,
    seed: int = 0,
    iterations: int = 40,
    bypass_probability: float = 0.01,
    verify_delivery: bool = False,
    clock_backend: str = "fidge",
) -> AtomicityResult:
    """Build the atomicity case-study workload.

    ``num_processes`` tasks each execute the protected method
    ``iterations`` times; each attempt bypasses the semaphore with
    ``bypass_probability`` (the paper's 1 %).  The computation has
    ``num_processes + 1`` traces — the semaphore is the extra one.
    """
    if num_processes < 2:
        raise ValueError(f"need >= 2 tasks to violate atomicity, got {num_processes}")

    kernel = Kernel(
        num_processes=num_processes,
        num_semaphores=1,
        seed=seed,
        semaphore_counts=[1],
        clock_backend=clock_backend,
    )
    server = instrument(kernel, verify=verify_delivery)
    semaphore = Semaphore(0)
    bypasses: List[Tuple[int, int]] = []

    def task_body(proc: Proc):
        rng = proc.rng
        for i in range(iterations):
            yield proc.emit("Think", text=str(i))
            yield proc.sleep(rng.random())
            bypass = rng.random() < bypass_probability
            if bypass:
                bypasses.append((proc.pid, i))
            yield from semaphore.acquire(proc, bypass=bypass)
            yield proc.emit("Access", text=str(i))
            if not bypass:
                yield from semaphore.release(proc)

    for pid in range(num_processes):
        kernel.spawn(pid, task_body)

    return AtomicityResult(
        kernel=kernel,
        server=server,
        num_traces=kernel.num_traces,
        bypasses=bypasses,
    )
