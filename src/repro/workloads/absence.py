"""Skipped-validation detection: a negation-operator case study.

A gateway (trace 0) fans requests out to worker processes.  A correct
worker handles each request as ``Request`` → ``Validate`` → ``Commit``;
the injected bug skips the validation step with small probability, so
the commit lands unchecked.  "Commit without a validation in between"
is exactly an *absence* pattern::

    pattern := R -> !V -> C;

with all three classes keyed to the same process by the attribute
variable ``$1`` — the per-worker pipeline whose gap we are hunting.
A match is a request/commit pair of one worker with no validation
causally between them.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.poet.instrument import instrument
from repro.poet.server import POETServer
from repro.simulation.kernel import Kernel, SimulationResult
from repro.simulation.process import Proc


def absence_pattern() -> str:
    """A commit with no validation causally between it and its request."""
    return """
R := [$1, Request, ''];
V := [$1, Validate, ''];
C := [$1, Commit, ''];
pattern := R -> !V -> C;
"""


@dataclasses.dataclass
class AbsenceResult:
    """A built (not yet run) skipped-validation workload.

    ``violations`` records ground truth: ``(worker, job)`` of every
    request committed without validation, appended as the simulation
    runs.
    """

    kernel: Kernel
    server: POETServer
    num_traces: int
    gateway: int
    violations: List[Tuple[int, int]]

    def run(self, max_events: Optional[int] = None) -> SimulationResult:
        return self.kernel.run(max_events=max_events)


def build_absence(
    num_workers: int = 4,
    seed: int = 0,
    jobs_per_worker: int = 25,
    skip_probability: float = 0.04,
    verify_delivery: bool = False,
    clock_backend: str = "fidge",
) -> AbsenceResult:
    """Build the skipped-validation workload.

    Trace 0 is the gateway; traces 1..num_workers are workers.  Each
    job is a message from the gateway followed by the worker's
    ``Request`` / ``Validate`` / ``Commit`` run; with probability
    ``skip_probability`` the worker commits without validating.
    """
    if num_workers < 1:
        raise ValueError(f"need >= 1 worker, got {num_workers}")

    kernel = Kernel(
        num_processes=num_workers + 1,
        seed=seed,
        buffer_capacity=None,
        clock_backend=clock_backend,
    )
    server = instrument(kernel, verify=verify_delivery)
    gateway = 0
    violations: List[Tuple[int, int]] = []

    def gateway_body(proc: Proc):
        rng = proc.rng
        for job in range(jobs_per_worker * num_workers):
            worker = 1 + (job % num_workers)
            yield proc.send(worker, payload=("req", job), text=f"to{worker}")
            yield proc.sleep(rng.random() * 0.2)

    def worker_body(proc: Proc):
        rng = proc.rng
        my_jobs = [
            j
            for j in range(jobs_per_worker * num_workers)
            if 1 + (j % num_workers) == proc.pid
        ]
        for job in my_jobs:
            yield proc.receive(gateway)
            yield proc.emit("Request", text=f"req{job}")
            if rng.random() < skip_probability:
                # the injected bug: the commit lands unchecked
                violations.append((proc.pid, job))
            else:
                yield proc.emit("Validate", text=f"req{job}")
            yield proc.emit("Commit", text=f"req{job}")
            yield proc.sleep(rng.random() * 0.3)

    kernel.spawn(gateway, gateway_body)
    for pid in range(1, num_workers + 1):
        kernel.spawn(pid, worker_body)

    return AbsenceResult(
        kernel=kernel,
        server=server,
        num_traces=kernel.num_traces,
        gateway=gateway,
        violations=violations,
    )
