"""Courier hot-path tracking: a Kleene + time-window case study.

A dispatcher (trace 0) hands delivery jobs to courier processes.  A
courier picks the parcel up, performs a run of ``Move`` hops flagged
``hot`` (the parcel is perishable), and drops it off.  The service
objective: the *whole* hot path — pickup, every hop, drop-off — must
fit inside a small logical-time window.  Most jobs are leisurely and
blow the window; an occasional *express* job fits.

The detection pattern exercises the v2 operators end to end::

    pattern := ((P ~> $m+) /\\ ($m+ -> D)) WITHIN <w>;

``$m+`` is the run of hops as one Kleene position, shared by both
relations of the conjunction so each stays a *single-event* relation
(dense pairwise constraints instead of compound existential ones);
``WITHIN`` bounds every pair (and the group internally) by the
window.  The class ``M`` carries two exact attributes (etype ``Move``,
text ``hot``), so the *static* most-selective-first heuristic orders
the huge ``Move`` history right after the trigger — while the
cost-based planner sees the live history sizes and instantiates the
rare ``Pickup`` first.  That makes this the benchmark's head-to-head
case for the planner.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.poet.instrument import instrument
from repro.poet.server import POETServer
from repro.simulation.kernel import Kernel, SimulationResult
from repro.simulation.process import Proc

#: The logical-time window every express delivery must fit in.
WINDOW = 16


def hotpath_pattern(window: int = WINDOW) -> str:
    """Pickup, one-or-more hot hops, drop-off — all within the window."""
    return f"""
P := ['', Pickup, ''];
M := ['', Move, 'hot'];
D := ['', Drop, ''];
M $m;
pattern := ((P ~> $m+) /\\ ($m+ -> D)) WITHIN {window};
"""


@dataclasses.dataclass
class HotpathResult:
    """A built (not yet run) courier workload.

    ``express`` records ground truth: ``(courier, job)`` of every
    express delivery (short enough to fit the window), appended as the
    simulation runs.
    """

    kernel: Kernel
    server: POETServer
    num_traces: int
    dispatcher: int
    express: List[Tuple[int, int]]

    def run(self, max_events: Optional[int] = None) -> SimulationResult:
        return self.kernel.run(max_events=max_events)


def build_hotpath(
    num_couriers: int = 4,
    seed: int = 0,
    jobs_per_courier: int = 12,
    express_probability: float = 0.08,
    normal_moves: Tuple[int, int] = (30, 60),
    express_moves: Tuple[int, int] = (4, 8),
    verify_delivery: bool = False,
    clock_backend: str = "fidge",
) -> HotpathResult:
    """Build the courier workload.

    Trace 0 is the dispatcher; traces 1..num_couriers are couriers.
    Each job is a message from the dispatcher followed by the courier's
    ``Pickup`` / ``Move``* / ``Drop`` run.  A *normal* job makes
    ``normal_moves`` hops (far more than the window allows); with
    probability ``express_probability`` the job is *express* and makes
    only ``express_moves`` hops, fitting the window.
    """
    if num_couriers < 1:
        raise ValueError(f"need >= 1 courier, got {num_couriers}")

    kernel = Kernel(
        num_processes=num_couriers + 1,
        seed=seed,
        buffer_capacity=None,
        clock_backend=clock_backend,
    )
    server = instrument(kernel, verify=verify_delivery)
    dispatcher = 0
    express: List[Tuple[int, int]] = []

    def dispatcher_body(proc: Proc):
        rng = proc.rng
        for job in range(jobs_per_courier * num_couriers):
            courier = 1 + (job % num_couriers)
            yield proc.send(courier, payload=("job", job), text=f"to{courier}")
            yield proc.sleep(rng.random() * 0.2)

    def courier_body(proc: Proc):
        rng = proc.rng
        my_jobs = [
            j
            for j in range(jobs_per_courier * num_couriers)
            if 1 + (j % num_couriers) == proc.pid
        ]
        for job in my_jobs:
            yield proc.receive(dispatcher)
            if rng.random() < express_probability:
                hops = rng.randint(*express_moves)
                express.append((proc.pid, job))
            else:
                hops = rng.randint(*normal_moves)
            yield proc.emit("Pickup", text=f"job{job}")
            for _ in range(hops):
                yield proc.emit("Move", text="hot")
            yield proc.emit("Drop", text=f"job{job}")
            yield proc.sleep(rng.random() * 0.5)

    kernel.spawn(dispatcher, dispatcher_body)
    for pid in range(1, num_couriers + 1):
        kernel.spawn(pid, courier_body)

    return HotpathResult(
        kernel=kernel,
        server=server,
        num_traces=kernel.num_traces,
        dispatcher=dispatcher,
        express=express,
    )
