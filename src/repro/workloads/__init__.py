"""The paper's four case-study workloads (Section V-C).

Each module builds a simulated target application with a deliberately
injected concurrency bug, returns the instrumented kernel + POET
server, and records ground truth about the injected violations so the
completeness benchmarks can verify OCEP's reports:

* :mod:`~repro.workloads.random_walk` — MPI parallel random walk with
  a send-cycle deadlock (Section V-C1);
* :mod:`~repro.workloads.message_race` — all-to-one ``ANY_SOURCE``
  benchmark with racing messages (Section V-C2);
* :mod:`~repro.workloads.atomicity` — μC++ semaphore-protected method
  with a 1 %-broken acquire (Section V-C3);
* :mod:`~repro.workloads.ordering_bug` — ZooKeeper-bug-962-style
  leader/follower replication with a 1 % stale-snapshot window
  (Sections III-D and V-C4);
* :mod:`~repro.workloads.patterns` — the corresponding detection
  patterns in the pattern language.

Two further workloads exercise the v2 pattern operators:

* :mod:`~repro.workloads.hotpath` — courier hot-path tracking
  (Kleene closure + time window, the planner benchmark case);
* :mod:`~repro.workloads.absence` — skipped-validation detection
  (negation with a shared process variable).
"""

from repro.workloads.patterns import (
    atomicity_pattern,
    deadlock_pattern,
    message_race_pattern,
    ordering_bug_pattern,
)
from repro.workloads.random_walk import RandomWalkResult, build_random_walk
from repro.workloads.message_race import MessageRaceResult, build_message_race
from repro.workloads.atomicity import AtomicityResult, build_atomicity
from repro.workloads.ordering_bug import OrderingBugResult, build_ordering_bug
from repro.workloads.hotpath import HotpathResult, build_hotpath, hotpath_pattern
from repro.workloads.absence import AbsenceResult, build_absence, absence_pattern
from repro.workloads.traffic_light import (
    TrafficLightResult,
    build_traffic_light,
    traffic_light_pattern,
)

__all__ = [
    "deadlock_pattern",
    "message_race_pattern",
    "atomicity_pattern",
    "ordering_bug_pattern",
    "build_random_walk",
    "RandomWalkResult",
    "build_message_race",
    "MessageRaceResult",
    "build_atomicity",
    "AtomicityResult",
    "build_ordering_bug",
    "OrderingBugResult",
    "build_traffic_light",
    "TrafficLightResult",
    "traffic_light_pattern",
    "build_hotpath",
    "HotpathResult",
    "hotpath_pattern",
    "build_absence",
    "AbsenceResult",
    "absence_pattern",
]
