"""The paper's introductory example: a traffic-light system.

Section I: "in a traffic-light system, a correctness condition is that
lights in only one direction may be green in the global state.
Alternatively, this problem can be modeled as a sequence of events
between the lights.  An event-matching-based approach monitors the
events ``e_i`` that denote light ``i`` has turned green and then
searches for a pattern that represents two events ``e_i`` and ``e_j``
happening concurrently.  A match to this pattern signifies that the
system is in an unsafe state."

Each light is a process; a controller grants the green phase by
message and the light returns it before the next grant — so correctly
sequenced ``Green`` events are causally ordered through the
controller.  The injected bug: with some probability a light turns
green *on its own* (a stuck relay), concurrent with the legitimate
phase.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.poet.instrument import instrument
from repro.poet.server import POETServer
from repro.simulation.kernel import Kernel, SimulationResult
from repro.simulation.process import Proc


def traffic_light_pattern() -> str:
    """Two lights green concurrently — the unsafe state as a pattern."""
    return """
G1 := ['', Green, ''];
G2 := ['', Green, ''];
pattern := G1 || G2;
"""


@dataclasses.dataclass
class TrafficLightResult:
    """A built (not yet run) traffic-light workload.

    ``faults`` records ground truth: ``(light, cycle)`` of every
    spontaneous (uncommanded) green, appended as the simulation runs.
    """

    kernel: Kernel
    server: POETServer
    num_traces: int
    controller: int
    faults: List[Tuple[int, int]]

    def run(self, max_events: Optional[int] = None) -> SimulationResult:
        return self.kernel.run(max_events=max_events)


def build_traffic_light(
    num_lights: int = 4,
    seed: int = 0,
    cycles: int = 20,
    fault_probability: float = 0.02,
    verify_delivery: bool = False,
    clock_backend: str = "fidge",
) -> TrafficLightResult:
    """Build the traffic-light workload.

    Trace 0 is the controller; traces 1..num_lights are lights.  The
    controller grants green to one light at a time and waits for the
    phase to end before granting the next, so correct greens are
    totally ordered through it.
    """
    if num_lights < 2:
        raise ValueError(f"need >= 2 lights for a conflict, got {num_lights}")

    kernel = Kernel(
        num_processes=num_lights + 1,
        seed=seed,
        buffer_capacity=None,
        clock_backend=clock_backend,
    )
    server = instrument(kernel, verify=verify_delivery)
    controller = 0
    faults: List[Tuple[int, int]] = []

    def controller_body(proc: Proc):
        rng = proc.rng
        for cycle in range(cycles):
            light = 1 + (cycle % num_lights)
            yield proc.send(light, payload=("go", cycle), text=f"to{light}")
            yield proc.receive(light)
            yield proc.sleep(rng.random() * 0.5)

    def light_body(proc: Proc):
        rng = proc.rng
        my_cycles = [c for c in range(cycles) if 1 + (c % num_lights) == proc.pid]
        for cycle in my_cycles:
            # the injected bug: a stuck relay goes green uncommanded,
            # concurrent with whoever legitimately holds the phase
            if rng.random() < fault_probability:
                faults.append((proc.pid, cycle))
                yield proc.emit("Green", text=f"fault@{cycle}")
                yield proc.emit("Red", text=f"fault@{cycle}")
            grant = yield proc.receive(controller)
            yield proc.emit("Green", text=str(grant.payload[1]))
            yield proc.sleep(rng.random())
            yield proc.emit("Red", text=str(grant.payload[1]))
            yield proc.send(controller, payload=("done", grant.payload[1]),
                            text=f"to{controller}")

    kernel.spawn(controller, controller_body)
    for pid in range(1, num_lights + 1):
        kernel.spawn(pid, light_body)

    return TrafficLightResult(
        kernel=kernel,
        server=server,
        num_traces=kernel.num_traces,
        controller=controller,
        faults=faults,
    )
