"""Leader/follower replication with a stale-snapshot ordering bug.

Sections III-D and V-C4, modelling ZooKeeper bug #962: "When a
restarting follower sent a synch request to the leader, the leader was
not blocked from making an update after it took a snapshot of the
system.  Thus a restarting follower could occasionally receive
inconsistent service-data from the leader."

Trace 0 is the leader; the remaining traces are followers that
occasionally restart and synchronize.  On each synch request the
leader takes a snapshot and forwards it; with 1 % probability the
injected bug applies an update *between* snapshot and forward — the
causal chain ``Synch -> Snapshot -> Update -> Forward`` the ordering
pattern detects.  Request ids in the event text pair the events of one
request (the paper's "encode the corresponding trace for a particular
Synch/Forward pair", made precise with an explicit id).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.poet.instrument import instrument
from repro.poet.server import POETServer
from repro.simulation.kernel import ANY_SOURCE, Kernel, SimulationResult
from repro.simulation.process import Proc


@dataclasses.dataclass
class OrderingBugResult:
    """A built (not yet run) ordering-bug workload.

    ``buggy_requests`` records ground truth: the request id of every
    synch served with the stale-snapshot bug, appended as the
    simulation runs.
    """

    kernel: Kernel
    server: POETServer
    num_traces: int
    leader: int
    buggy_requests: List[str]

    def run(self, max_events: Optional[int] = None) -> SimulationResult:
        return self.kernel.run(max_events=max_events)


def build_ordering_bug(
    num_traces: int,
    seed: int = 0,
    synchs_per_follower: int = 5,
    bug_probability: float = 0.01,
    updates_between: int = 2,
    verify_delivery: bool = False,
    clock_backend: str = "fidge",
) -> OrderingBugResult:
    """Build the ordering-bug case-study workload.

    Parameters
    ----------
    num_traces:
        Leader plus ``num_traces - 1`` followers.
    synchs_per_follower:
        Restart/synchronize cycles per follower.
    bug_probability:
        Chance a request is served with an update squeezed between
        snapshot and forward (the paper's 1 %).
    updates_between:
        Normal service updates the leader applies between requests
        (workload noise that must *not* match).
    """
    if num_traces < 2:
        raise ValueError(f"need a leader and >= 1 follower, got {num_traces}")

    kernel = Kernel(
        num_processes=num_traces,
        seed=seed,
        buffer_capacity=None,
        clock_backend=clock_backend,
    )
    server = instrument(kernel, verify=verify_delivery)
    leader = 0
    total_requests = (num_traces - 1) * synchs_per_follower
    buggy: List[str] = []

    def leader_body(proc: Proc):
        rng = proc.rng
        for _ in range(total_requests):
            msg = yield proc.receive(ANY_SOURCE)
            req_id = msg.payload
            yield proc.emit("Take_Snapshot", text=req_id)
            if rng.random() < bug_probability:
                buggy.append(req_id)
                yield proc.emit("Make_Update", text="")  # the bug
            yield proc.emit("Forward_Snapshot", text=req_id)
            yield proc.send(msg.src, text=f"to{msg.src}", payload=req_id)
            # Normal service activity between requests.
            for _ in range(updates_between):
                yield proc.emit("Make_Update", text="")
                yield proc.sleep(rng.random() * 0.2)

    def follower_body(proc: Proc):
        rng = proc.rng
        for i in range(synchs_per_follower):
            yield proc.sleep(rng.random() * 3.0)
            yield proc.emit("Restart", text=str(i))
            req_id = f"r{proc.pid}.{i}"
            yield proc.emit("Synch_Request", text=req_id)
            yield proc.send(leader, text=f"to{leader}", payload=req_id)
            snapshot = yield proc.receive(leader)
            yield proc.emit("Apply_Snapshot", text=snapshot.payload)

    kernel.spawn(leader, leader_body)
    for pid in range(1, num_traces):
        kernel.spawn(pid, follower_body)

    return OrderingBugResult(
        kernel=kernel,
        server=server,
        num_traces=num_traces,
        leader=leader,
        buggy_requests=buggy,
    )
