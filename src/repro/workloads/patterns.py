"""Pattern-language sources for the four case studies.

These are the patterns the paper's evaluation runs (Section V-C), in
the concrete syntax of :mod:`repro.patterns`.  Each builder returns
source text; compile it against the workload's trace names with
:meth:`repro.Monitor.from_source`.
"""

from __future__ import annotations


def deadlock_pattern(num_traces: int) -> str:
    """Send-cycle deadlock of a specific length (Section V-C1).

    One class per ring member matches that process's *blocked* send to
    its right neighbour; the pattern requires all of them to be
    pairwise concurrent — a wait-for cycle no receive has broken.
    Event patterns cannot express a generic cycle, so the pattern
    length equals the ring length (here: all traces).
    """
    if num_traces < 2:
        raise ValueError(f"a send cycle needs >= 2 traces, got {num_traces}")
    lines = []
    for i in range(num_traces):
        right = (i + 1) % num_traces
        lines.append(f"B{i} := [P{i}, SendBlock, 'to{right}'];")
    chain = " || ".join(f"B{i}" for i in range(num_traces))
    lines.append(f"pattern := {chain};")
    return "\n".join(lines)


def message_race_pattern() -> str:
    """Two concurrent messages into one process (Section V-C2).

    The partner operator ties each send to its receive; the attribute
    variable ``$p`` forces both receives onto the same process; the
    concurrency of the sends is the race itself.
    """
    return """
S := ['', Send, ''];
R := [$p, Receive, ''];
S $s1;
S $s2;
R $r1;
R $r2;
pattern := ($s1 <> $r1) /\\ ($s2 <> $r2) /\\ ($s1 || $s2);
"""


def atomicity_pattern() -> str:
    """Two concurrent executions of a semaphore-protected method
    (Section V-C3).

    With the semaphore modelled as its own trace, correctly locked
    accesses are causally ordered through it; a concurrent pair means
    some acquire did not really take the semaphore.
    """
    return """
X := ['', Access, ''];
Y := ['', Access, ''];
pattern := X || Y;
"""


def ordering_bug_pattern() -> str:
    """The ZooKeeper bug-962 ordering pattern (Section III-D).

    A snapshot taken for a synchronization request is followed by an
    update before that snapshot is forwarded to the follower — the
    follower then receives stale service data.  The attribute variable
    ``$r`` pairs the Synch / Take_Snapshot / Forward_Snapshot events of
    one request ("the text field ... is using it to encode the
    corresponding trace for a particular Synch/Forward pair"); the
    event variables ``$Diff`` and ``$Write`` pin the same snapshot and
    update across the conjunction.
    """
    return """
Synch    := ['', Synch_Request, $r];
Snapshot := [$l, Take_Snapshot, $r];
Update   := [$l, Make_Update, ''];
Forward  := [$l, Forward_Snapshot, $r];
Snapshot $Diff;
Update $Write;
pattern := (Synch -> $Diff) /\\ ($Diff -> $Write) /\\ ($Write -> Forward);
"""
