"""Parallel random walk with an injected send-cycle deadlock.

Section V-C1: "We simulate deadlock using a parallel algorithm for
random walk ... It divides a domain among the parallel processes and
each process has a number of walkers traversing a contiguous
sub-domain.  The processes communicate among themselves to exchange
the walkers that move across process boundaries.  We deliberately
leave a deadlock in the code for this point-to-point communication.
Interestingly enough, this deadlock is rarely visible as MPI_Send,
although a blocking operation, only gets blocked when the network
cannot buffer the message completely."

The simplification here is a *directed* walk on a ring: walkers drift
rightward, so boundary exchange is a send to the right neighbour and a
receive from the left.  The injected bug: with small probability a
process mis-counts incoming walkers and skips its receive for the
round.  Unconsumed messages pile up; once a mailbox exceeds the
network buffer capacity, the sender blocks; blocked processes stop
receiving, and the blockage cascades around the ring into a cycle of
blocked sends — the deadlock OCEP detects as ``n`` pairwise-concurrent
``SendBlock`` events.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.poet.instrument import instrument
from repro.poet.server import POETServer
from repro.simulation.kernel import Kernel, SimulationResult
from repro.simulation.mpi import MPIContext


@dataclasses.dataclass
class RandomWalkResult:
    """A built (not yet run) random-walk workload."""

    kernel: Kernel
    server: POETServer
    num_traces: int

    def run(self, max_events: Optional[int] = None) -> SimulationResult:
        """Run until deadlock or the event budget."""
        return self.kernel.run(max_events=max_events)


def build_random_walk(
    num_traces: int,
    seed: int = 0,
    walkers_per_process: int = 16,
    skip_probability: float = 0.05,
    buffer_capacity: int = 4,
    verify_delivery: bool = False,
    clock_backend: str = "fidge",
) -> RandomWalkResult:
    """Build the deadlock case-study workload.

    Parameters
    ----------
    num_traces:
        Ring size (one trace per process).
    seed:
        Simulation seed.
    walkers_per_process:
        Initial walkers per sub-domain.
    skip_probability:
        Probability per round that a process mis-counts and skips its
        receive — the injected bug.  Zero gives a deadlock-free run
        (used by the false-positive checks).
    buffer_capacity:
        Network buffer per destination; smaller manifests the deadlock
        sooner.
    verify_delivery:
        Assert causal delivery order in the POET server (tests).
    """
    if num_traces < 2:
        raise ValueError(f"the ring needs >= 2 processes, got {num_traces}")

    kernel = Kernel(
        num_processes=num_traces,
        seed=seed,
        buffer_capacity=buffer_capacity,
        clock_backend=clock_backend,
    )
    server = instrument(kernel, verify=verify_delivery)

    def rank_body(mpi: MPIContext):
        rank, size = mpi.rank, mpi.size
        right = (rank + 1) % size
        left = (rank - 1) % size
        walkers = walkers_per_process
        rng = mpi.rng
        while True:  # run until the kernel's budget or the deadlock
            # Local phase: walkers take steps within the sub-domain;
            # some cross the right boundary.
            crossers = sum(1 for _ in range(walkers) if rng.random() < 0.25)
            yield mpi.emit("Walk", text=str(walkers))
            yield mpi.sleep(rng.random() * 0.5)

            # Exchange phase: ship crossers right, collect from left.
            yield mpi.send(right, text=f"to{right}", payload=crossers)
            walkers -= crossers
            if rng.random() >= skip_probability:
                msg = yield mpi.recv(source=left)
                walkers += msg.payload
            # else: the injected bug — incoming walkers never collected

    for rank in range(num_traces):
        kernel.spawn(rank, lambda proc, _s=num_traces: rank_body(MPIContext(proc, _s)))

    return RandomWalkResult(kernel=kernel, server=server, num_traces=num_traces)
