"""Command-line interface.

Every subcommand runs the same staged engine
(:class:`repro.engine.Pipeline`); they differ only in source, watched
patterns, and reporting:

``ocep simulate <case>``
    Run one of the case-study workloads and dump its event stream to a
    POET dump file.

``ocep match <pattern-file> <dump-file>``
    Replay a dump through the online matcher and print every reported
    match plus the representative subset.

``ocep case <case>``
    Simulate a case study and monitor it live with its built-in
    pattern (ground truth checked).

``ocep bench <case>``
    Replay a case study several times and print the per-event quartile
    table (the Figure 10 methodology).

``ocep diagram <dump-file>``
    Render a dump as an ASCII process-time diagram (or GraphViz DOT
    with ``--dot``).

``ocep offline <pattern-file> <dump-file>``
    Post-mortem analysis: enumerate *every* match in a complete log
    (the offline comparison point to the online monitor).

``ocep stats <case>``
    Run a case study with full observability on and emit the metrics
    registry (matcher counters, latency histograms, subset/history
    gauges, POET delivery counts, end-to-end detection latency) as a
    table, JSON, or Prometheus text, plus an optional tail of the
    search trace (embedded in the document with ``--format json``).

``ocep serve <case>``
    Run a case with the embedded scrape server bound (``/metrics``,
    ``/snapshot``, ``/healthz``, ``/readyz``, ``/spans``) and keep
    serving the end-of-run state afterwards (``--linger`` bounds it;
    default is until Ctrl-C).  ``ocep case`` and ``ocep stats`` accept
    ``--serve-port`` for a server scoped to the run itself.

``ocep profile <case>``
    Sample the pipeline run with the wall-clock profiler and print the
    per-stage self-time split plus the hottest frames; ``-o FILE``
    writes collapsed stacks for ``flamegraph.pl`` / speedscope.

``ocep perf trend|diff``
    The perf-regression sentinel: ``trend`` flattens the git-tracked
    ``benchmarks/results/BENCH_*.json`` into ``BENCH_trend.json``;
    ``diff --baseline FILE`` exits 1 when any current indicator
    regressed past the threshold (the CI perf gate).

``ocep trace <case>``
    Run a case study with span tracing on and write the full causal
    timeline — per-trace simulated-time tracks with happens-before
    flow arrows, plus wall-clock delivery/search spans — as Chrome
    trace-event JSON, loadable in Perfetto or ``chrome://tracing``.
    ``ocep case`` and ``ocep chaos`` accept ``--trace-out FILE`` for
    the same recording alongside their normal output.

``ocep chaos <case>``
    Record a case study's stream, then replay it through the seeded
    fault matrix (reorder / delay / duplicate / drop / crash x seeds),
    checking every cell against the fault-free oracle: repairable
    faults must yield the identical representative subset, drops must
    be detected as stalls, and a checkpoint/restore after the seeded
    crash must converge.  Exit status 1 when any cell fails.

``ocep pipeline <case|all>``
    The sharded-equivalence check (the CI pipeline-smoke job): run the
    four case-study patterns in ONE batched sharded pass over each
    requested workload, then diff the matches, subsets, and per-monitor
    counters against four independent per-event single-pattern runs.
    Exit status 1 on any divergence.

Installed as the ``ocep`` console script; also runnable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional

from repro.analysis import compute_boxplot, quartile_table
from repro.clocks import CLOCK_BACKENDS
from repro.analysis.runner import replay_through_monitor
from repro.core.config import MatcherConfig
from repro.engine import CASE_STUDY_NAMES, CASES, Pipeline, case_patterns
from repro.obs import MetricsRegistry, to_json, to_prometheus
from repro.obs.latency import track_detection_latency
from repro.obs.spans import SpanTracer, to_chrome_json, validate_trace_events
from repro.poet.dumpfile import dump_events, load_events
from repro.resilience.shedding import (
    DEFAULT_RATES as DEFAULT_SHED_RATES,
    DEFAULT_SHED_EVENTS,
)


def _print_report(report, names) -> None:
    chain = sorted(report.as_dict().values(), key=lambda e: e.lamport)
    rendered = "  ".join(
        f"{e.etype}@{names[e.trace]}#{e.index}" for e in chain
    )
    bindings = dict(report.bindings)
    suffix = f"  bindings={bindings}" if bindings else ""
    print(f"match: {rendered}{suffix}")


def cmd_simulate(args: argparse.Namespace) -> int:
    pipeline = Pipeline.for_case(
        args.case, args.traces, args.seed,
        clock_backend=args.clock_backend,
    )
    recorder = pipeline.record()
    result = pipeline.run(max_events=args.max_events)
    names = pipeline.trace_names
    count = dump_events(args.output, recorder.events, len(names), names)
    print(
        f"simulated {result.num_events} events "
        f"(deadlocked={result.deadlocked}); wrote {count} to {args.output}"
    )
    return 0


def cmd_match(args: argparse.Namespace) -> int:
    with open(args.pattern, "r", encoding="utf-8") as fh:
        pattern_source = fh.read()
    pipeline = Pipeline.from_dump(args.dump, clock_backend=args.clock_backend)
    names = pipeline.trace_names
    monitor = pipeline.watch("pattern", pattern_source)
    pipeline.run()
    for report in monitor.reports:
        _print_report(report, names)
    stats = monitor.stats()
    print(
        f"\n{stats.events_seen} events, {stats.matches_reported} matches, "
        f"subset {stats.subset_size} "
        f"(bound {monitor.pattern.num_leaves * pipeline.num_traces}), "
        f"history {stats.history_size}"
    )
    return 0


def _write_trace(tracer: SpanTracer, path: str) -> dict:
    """Validate and write a tracer's recording as Chrome trace JSON."""
    counts = validate_trace_events(tracer.events())
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_chrome_json(tracer))
        fh.write("\n")
    print(
        f"wrote {counts['events']} trace events to {path} "
        f"({counts['spans']} spans, {counts['flows']} flows, "
        f"{counts['sim_events']} sim slices, {counts['instants']} instants)"
    )
    return counts


def cmd_case(args: argparse.Namespace) -> int:
    tracer = SpanTracer() if args.trace_out else None
    pipeline = Pipeline.for_case(
        args.case, args.traces, args.seed, tracer=tracer,
        clock_backend=args.clock_backend,
    )
    if args.serve_port is not None:
        pipeline.with_server(port=args.serve_port)
    names = pipeline.trace_names
    monitor = pipeline.watch_case(
        on_match=None if args.quiet else (lambda r: _print_report(r, names)),
    )
    result = pipeline.run(max_events=args.max_events)
    stats = monitor.stats()
    print(
        f"\ncase={args.case} traces={args.traces}: {result.num_events} events"
        f"{' (deadlocked)' if result.deadlocked else ''}, "
        f"{stats.matches_reported} matches, subset {stats.subset_size}"
    )
    if result.obs_server is not None:
        print(f"served {result.obs_server.requests_served} requests on "
              f"{result.obs_server.url}")
        result.obs_server.stop()
    if tracer is not None:
        _write_trace(tracer, args.trace_out)
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    """Run a case, then explain the evaluation plan of every trigger
    leaf — the cost-based order the planner derives from the live leaf
    histories, next to the static legacy order it replaces."""
    from repro.patterns.plan import plan_order

    pipeline = Pipeline.for_case(
        args.case, args.traces, args.seed,
        clock_backend=args.clock_backend,
    )
    monitor = pipeline.watch_case(on_match=None)
    result = pipeline.run(max_events=args.max_events)
    matcher = monitor.matcher
    pattern = matcher.pattern
    print(
        f"case={args.case} traces={args.traces}: {result.num_events} events"
        f" processed, pattern has "
        f"{'v2 operators' if pattern.has_v2_features else 'legacy operators only'}"
    )
    for history in matcher.history.histories:
        leaf = pattern.leaves[history.leaf_id]
        print(f"  leaf {history.leaf_id} [{leaf.label}]: history {history.size}")
    for trigger_leaf in pattern.terminating_leaves():
        print()
        print(matcher.current_plan(trigger_leaf).explain())
        legacy = plan_order(pattern, trigger_leaf, None)
        if matcher.current_plan(trigger_leaf).order != legacy.order:
            print(f"  (legacy heuristic order would be {legacy.order})")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    registry = MetricsRegistry()
    tracer = SpanTracer()
    pipeline = Pipeline.for_case(
        args.case, args.traces, args.seed, registry=registry, tracer=tracer,
        clock_backend=args.clock_backend,
    )
    latency = track_detection_latency(pipeline.kernel, registry)
    monitor = pipeline.watch_case(
        config=MatcherConfig(search_trace_size=args.trace_size),
        on_match=latency.observe_report,
    )
    result = pipeline.run(max_events=args.max_events)
    monitor.publish_metrics()
    stats = monitor.stats()
    print(
        f"case={args.case} traces={args.traces}: {result.num_events} events"
        f"{' (deadlocked)' if result.deadlocked else ''}, "
        f"{stats.matches_reported} matches, "
        f"{stats.searches_run} searches"
    )
    print(
        f"detection latency: {latency.latencies_observed} observations "
        f"from {latency.reports_observed} reports"
    )
    _write_trace(tracer, args.output)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    pipeline = Pipeline.for_case(
        args.case, args.traces, args.seed,
        clock_backend=args.clock_backend,
    )
    recorder = pipeline.record()
    result = pipeline.run(max_events=args.max_events)
    timings, monitor = replay_through_monitor(
        recorder.events,
        pipeline.case_pattern,
        pipeline.trace_names,
        repetitions=args.repetitions,
    )
    stats = compute_boxplot([t * 1e6 for t in timings])
    print(f"case={args.case} traces={args.traces} events={result.num_events} "
          f"repetitions={args.repetitions}")
    print(quartile_table({args.case: stats}))
    return 0


def _metrics_table(registry: MetricsRegistry) -> str:
    """Plain-text rendering of a registry snapshot."""
    lines = []
    for metric in registry.metrics():
        labels = ""
        if metric.labels:
            labels = "{" + ",".join(f"{k}={v}" for k, v in metric.labels) + "}"
        if metric.kind == "histogram":
            if metric.name.endswith("_seconds"):
                # Wall-clock histograms render in microseconds; others
                # (e.g. simulated-time latency) keep their native unit.
                scale, unit = 1e6, "us"
            else:
                scale, unit = 1.0, ""
            lines.append(
                f"{metric.name}{labels}  count={metric.count} "
                f"mean={metric.mean * scale:.1f}{unit} "
                f"p50={metric.quantile(0.5) * scale:.1f}{unit} "
                f"p99={metric.quantile(0.99) * scale:.1f}{unit}"
            )
        else:
            value = metric.value
            if isinstance(value, float) and value.is_integer():
                value = int(value)
            lines.append(f"{metric.name}{labels}  {value}")
    return "\n".join(lines)


def cmd_stats(args: argparse.Namespace) -> int:
    registry = MetricsRegistry()
    pipeline = Pipeline.for_case(
        args.case, args.traces, args.seed, registry=registry,
        clock_backend=args.clock_backend,
    )
    if args.serve_port is not None:
        pipeline.with_server(port=args.serve_port)
    names = pipeline.trace_names
    latency = track_detection_latency(pipeline.kernel, registry)
    monitor = pipeline.watch_case(
        config=MatcherConfig(search_trace_size=args.trace_size),
        on_match=latency.observe_report,
    )
    result = pipeline.run(max_events=args.max_events)
    monitor.publish_metrics()
    if result.obs_server is not None:
        result.obs_server.stop()

    show_trace = args.show_trace and monitor.search_trace is not None

    if args.describe:
        text = _describe_metrics(registry)
        show_trace = False
    elif args.format == "json":
        # Structured output stays structured: the search-trace tail is
        # embedded in the document, not printed as text to stderr.
        document = json.loads(to_json(registry))
        if show_trace:
            records = monitor.search_trace.records()[-args.show_trace:]
            document["search_trace"] = {
                "recorded_total": monitor.search_trace.recorded_total,
                "capacity": monitor.search_trace.capacity,
                "records": [record.as_dict() for record in records],
            }
        text = json.dumps(document, indent=2, sort_keys=True)
    elif args.format == "prometheus":
        text = to_prometheus(registry)
    else:
        text = _metrics_table(registry)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text if text.endswith("\n") else text + "\n")
        print(f"wrote {args.format} metrics to {args.output}")
    else:
        print(text)

    if show_trace and args.format != "json":
        records = monitor.search_trace.records()[-args.show_trace:]
        print(f"\nsearch trace (last {len(records)} of "
              f"{monitor.search_trace.recorded_total} recorded):",
              file=sys.stderr)
        for record in records:
            where = f"@{names[record.trace]}" if record.trace is not None else ""
            print(
                f"  search {record.search} level {record.level} "
                f"leaf {record.leaf_id}{where}: {record.kind} {record.detail}",
                file=sys.stderr,
            )
    return 0


def _describe_metrics(registry: MetricsRegistry) -> str:
    """Markdown reference table of every registered metric (the
    auto-generated section of ``docs/observability.md``)."""
    rows = {}
    for metric in registry.metrics():
        label_names = ",".join(k for k, _ in metric.labels)
        key = (metric.name, label_names)
        if key not in rows:
            rows[key] = (
                metric.name,
                metric.kind,
                label_names,
                metric.help,
                getattr(metric, "alias", None),
            )
    lines = [
        "| metric | kind | labels | help |",
        "| --- | --- | --- | --- |",
    ]
    for name, kind, labels, help_text, alias in sorted(rows.values()):
        note = f" (legacy alias: `{alias}`)" if alias else ""
        label_cell = f"`{labels}`" if labels else ""
        lines.append(f"| `{name}` | {kind} | {label_cell} | {help_text}{note} |")
    return "\n".join(lines)


def cmd_serve(args: argparse.Namespace) -> int:
    registry = MetricsRegistry()
    tracer = SpanTracer()
    pipeline = Pipeline.for_case(
        args.case, args.traces, args.seed, registry=registry, tracer=tracer,
        clock_backend=args.clock_backend,
    ).with_server(port=args.port, host=args.host)
    latency = track_detection_latency(pipeline.kernel, registry)
    monitor = pipeline.watch_case(on_match=latency.observe_report)
    result = pipeline.run(max_events=args.max_events)
    monitor.publish_metrics()
    stats = monitor.stats()
    server = pipeline.obs_server
    print(
        f"case={args.case} traces={args.traces}: {result.num_events} events"
        f"{' (deadlocked)' if result.deadlocked else ''}, "
        f"{stats.matches_reported} matches"
    )
    print(f"serving {server.url}  "
          "(/metrics /snapshot /healthz /readyz /spans)")
    try:
        if args.linger is None:
            print("Ctrl-C to stop")
            while True:
                time.sleep(3600)
        else:
            time.sleep(args.linger)
    except KeyboardInterrupt:
        pass
    finally:
        served = server.requests_served
        server.stop()
    print(f"served {served} requests")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.profile import SamplingProfiler

    pipeline = Pipeline.for_case(
        args.case, args.traces, args.seed,
        clock_backend=args.clock_backend,
    )
    monitor = pipeline.watch_case()
    with SamplingProfiler(interval=args.interval) as profiler:
        result = pipeline.run(max_events=args.max_events)
    stats = monitor.stats()
    print(
        f"case={args.case} traces={args.traces}: {result.num_events} events"
        f"{' (deadlocked)' if result.deadlocked else ''}, "
        f"{stats.matches_reported} matches"
    )
    print(profiler.report(args.top))
    if args.output:
        lines = profiler.collapsed()
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines))
            if lines:
                fh.write("\n")
        print(f"wrote {len(lines)} collapsed stacks to {args.output} "
              "(flamegraph.pl / speedscope input)")
    return 0


def cmd_perf_trend(args: argparse.Namespace) -> int:
    from repro.analysis import perf_trend

    path = perf_trend.write_trend(args.results, args.output)
    document = perf_trend.load_trend(path)
    print(
        f"wrote {len(document['indicators'])} indicators from "
        f"{len(document['sources'])} benchmark files to {path}"
    )
    return 0


def cmd_perf_diff(args: argparse.Namespace) -> int:
    from repro.analysis import perf_trend

    baseline = perf_trend.load_trend(args.baseline)
    if args.current:
        current = perf_trend.load_trend(args.current)
    else:
        current = perf_trend.build_trend(args.results)
    shared = len(
        set(baseline["indicators"]) & set(current["indicators"])
    )
    regressions = perf_trend.diff_trends(
        baseline, current, threshold=args.threshold
    )
    if regressions:
        print(
            f"{len(regressions)} regression(s) past +{args.threshold:.0%} "
            f"across {shared} shared indicators:"
        )
        for regression in regressions:
            print(f"  {regression.describe()}")
        return 1
    print(
        f"no regressions past +{args.threshold:.0%} "
        f"({shared} shared indicators)"
    )
    return 0


def _parse_rates(text: str) -> list:
    """Drop-rate spec: comma-separated floats in (0, 1)."""
    rates = [float(part) for part in text.split(",") if part.strip()]
    if not rates or any(not 0.0 < rate < 1.0 for rate in rates):
        raise argparse.ArgumentTypeError(
            f"rates must be floats in (0, 1), got {text!r}"
        )
    return rates


def _parse_seeds(text: str) -> list:
    """Seed spec: ``0..9`` (inclusive range), ``1,4,7``, or ``5``."""
    text = text.strip()
    if ".." in text:
        lo_text, hi_text = text.split("..", 1)
        lo, hi = int(lo_text), int(hi_text)
        if hi < lo:
            raise argparse.ArgumentTypeError(f"empty seed range {text!r}")
        return list(range(lo, hi + 1))
    return [int(part) for part in text.split(",") if part.strip()]


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.resilience import DEFAULT_PLANS, run_fault_matrix

    pipeline = Pipeline.for_case(
        args.case, args.traces, args.seed,
        clock_backend=args.clock_backend,
    )
    recorder = pipeline.record()
    result = pipeline.run(max_events=args.max_events)
    print(
        f"case={args.case} traces={args.traces}: recorded "
        f"{result.num_events} events; matrix over seeds {args.seeds}"
    )

    if args.plans:
        by_kind = {plan.kind: plan for plan in DEFAULT_PLANS}
        try:
            plans = [by_kind[kind] for kind in args.plans]
        except KeyError as exc:
            print(f"unknown fault kind {exc.args[0]!r}", file=sys.stderr)
            return 2
    else:
        plans = list(DEFAULT_PLANS)

    tracer = SpanTracer() if args.trace_out else None
    report = run_fault_matrix(
        recorder.events,
        pipeline.case_pattern,
        pipeline.trace_names,
        plans=plans,
        seeds=args.seeds,
        stall_watermark=args.stall_watermark,
        tracer=tracer,
        shedding=args.shed,
    )
    print(report.summary())
    payload = report.to_dict()
    scenario_ok = True
    if args.overload:
        from repro.resilience import run_overload_scenario

        runs = run_overload_scenario(
            recorder.events,
            pipeline.case_pattern,
            pipeline.trace_names,
            seeds=args.seeds,
            tracer=tracer,
        )
        print("overload scenario (burst -> shed -> recover):")
        for run in runs:
            status = "ok  " if run.ok else "FAIL"
            print(f"  {status} seed={run.seed:<3} {run.detail}")
        scenario_ok = all(run.ok for run in runs)
        payload["overload_scenario"] = [run.to_dict() for run in runs]
        payload["ok"] = payload["ok"] and scenario_ok
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote JSON report to {args.json}")
    if tracer is not None:
        _write_trace(tracer, args.trace_out)
    return 0 if report.ok and scenario_ok else 1


def cmd_shed(args: argparse.Namespace) -> int:
    from repro.resilience import run_shedding_sweep

    cases = list(CASE_STUDY_NAMES) if args.case == "all" else [args.case]
    report = run_shedding_sweep(
        cases=cases,
        seeds=args.seeds,
        rates=args.rates,
        traces=args.traces,
        max_events=args.max_events,
        clock_backend=args.clock_backend,
    )
    print(report.summary())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2)
            fh.write("\n")
        print(f"wrote JSON report to {args.json}")
    return 0 if report.ok else 1


def _pipeline_cell(case: str, seed: int, traces: int, max_events: int,
                   batch_size: int) -> dict:
    """One sharded-vs-independent equivalence cell.

    Runs the case's workload once, then the four case-study patterns
    (a) in one batched sharded pass and (b) as four independent
    per-event single-pattern replays, and diffs matches, subset
    signatures, and full per-monitor counters.
    """
    source = Pipeline.for_case(case, traces, seed)
    recorder = source.record()
    outcome = source.run(max_events=max_events)
    events, names = recorder.events, source.trace_names
    patterns = case_patterns(len(names))
    if case not in patterns:
        # a v2 case (hotpath, absence): its own pattern rides the
        # sharded pass alongside the four legacy ones
        patterns = {case: CASES[case].pattern(len(names)), **patterns}

    sharded = Pipeline.replay(events, names)
    for name, pattern in patterns.items():
        sharded.watch(name, pattern, record_timings=False)
    sharded_result = sharded.run(batch_size=batch_size)

    mismatches = []
    total_matches = 0
    for name, pattern in patterns.items():
        solo = Pipeline.replay(events, names)
        monitor = solo.watch(name, pattern, record_timings=False)
        solo.run(batch_size=1)
        shard = sharded_result[name]
        total_matches += len(monitor.reports)
        if shard.reports != monitor.reports:
            mismatches.append(f"{name}: match reports differ")
        if shard.subset.signature() != monitor.subset.signature():
            mismatches.append(f"{name}: subset signatures differ")
        if shard.stats() != monitor.stats():
            mismatches.append(
                f"{name}: counters differ "
                f"(sharded={shard.stats()}, independent={monitor.stats()})"
            )
    return {
        "case": case,
        "seed": seed,
        "events": outcome.num_events,
        "matches": total_matches,
        "ok": not mismatches,
        "mismatches": mismatches,
    }


def cmd_pipeline(args: argparse.Namespace) -> int:
    cases = list(CASE_STUDY_NAMES) if args.case == "all" else [args.case]
    cells = []
    for case in cases:
        for seed in args.seeds:
            cell = _pipeline_cell(
                case, seed, args.traces, args.max_events, args.batch_size
            )
            cells.append(cell)
            status = "ok  " if cell["ok"] else "FAIL"
            line = (
                f"  {status} case={case:<9} seed={seed:<3} "
                f"events={cell['events']:<6} matches={cell['matches']}"
            )
            print(line)
            for mismatch in cell["mismatches"]:
                print(f"       {mismatch}")
    passed = sum(cell["ok"] for cell in cells)
    print(f"pipeline equivalence: {passed}/{len(cells)} cells passed "
          f"(4 shards each, batch={args.batch_size})")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump({"ok": passed == len(cells), "cells": cells}, fh,
                      indent=2)
            fh.write("\n")
        print(f"wrote JSON report to {args.json}")
    return 0 if passed == len(cells) else 1


def cmd_cluster(args: argparse.Namespace) -> int:
    from repro.resilience.cluster_chaos import run_cluster_cell

    cases = list(CASE_STUDY_NAMES) if args.case == "all" else [args.case]
    cells = []
    for case in cases:
        for seed in args.seeds:
            cell = run_cluster_cell(
                case, seed,
                traces=args.traces,
                max_events=args.max_events,
                workers=args.workers,
                batch_size=args.batch_size,
                clock_backend=args.clock_backend,
                kill=args.kill,
            )
            cells.append(cell)
            status = "ok  " if cell["ok"] else "FAIL"
            line = (
                f"  {status} case={case:<9} seed={seed:<3} "
                f"events={cell['events']:<6} matches={cell['matches']:<5} "
                f"restarts={cell['restarts']}"
            )
            print(line)
            for mismatch in cell["mismatches"]:
                print(f"       {mismatch}")
    passed = sum(cell["ok"] for cell in cells)
    mode = "kill/recovery" if args.kill else "equivalence"
    print(f"cluster {mode}: {passed}/{len(cells)} cells passed "
          f"({args.workers} workers, batch={args.batch_size})")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump({"ok": passed == len(cells), "workers": args.workers,
                       "kill": args.kill, "cells": cells}, fh, indent=2)
            fh.write("\n")
        print(f"wrote JSON report to {args.json}")
    return 0 if passed == len(cells) else 1


def cmd_diagram(args: argparse.Namespace) -> int:
    from repro.analysis.diagram import render_diagram
    from repro.analysis.export import to_dot

    events, num_traces, names = load_events(args.dump)
    if args.limit:
        events = events[: args.limit]
    if args.dot:
        print(to_dot(events, num_traces, names))
    else:
        print(
            render_diagram(
                events, num_traces, names, max_width=args.width
            )
        )
    return 0


def cmd_offline(args: argparse.Namespace) -> int:
    from repro.baselines.offline import OfflineAnalyzer

    with open(args.pattern, "r", encoding="utf-8") as fh:
        pattern_source = fh.read()
    events, num_traces, names = load_events(args.dump)
    analyzer = OfflineAnalyzer.from_source(pattern_source, names)
    result = analyzer.analyze(events)
    for match in result.matches[: args.limit or len(result.matches)]:
        chain = sorted(match.values(), key=lambda e: e.lamport)
        print("match:", "  ".join(
            f"{e.etype}@{names[e.trace]}#{e.index}" for e in chain
        ))
    shown = min(len(result.matches), args.limit or len(result.matches))
    if shown < result.num_matches:
        print(f"... and {result.num_matches - shown} more")
    print(
        f"\n{len(events)} events, {result.num_matches} total matches, "
        f"{len(result.covered)} (event, trace) slots, "
        f"analysis took {result.analysis_seconds:.3f}s"
    )
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ocep",
        description="OCEP: online causal-event-pattern matching (ICDCS 2013)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, with_traces_default):
        p.add_argument("--traces", type=int, default=with_traces_default,
                       help="number of traces / processes")
        p.add_argument("--seed", type=int, default=0, help="simulation seed")
        p.add_argument("--max-events", type=int, default=50_000,
                       help="event budget for the simulation")
        p.add_argument("--clock-backend", choices=CLOCK_BACKENDS,
                       default="fidge",
                       help="timestamp scheme: full Fidge/Mattern vectors "
                            "or O(1) encoded clocks (identical matches)")

    p = sub.add_parser("simulate", help="run a case study and dump its events")
    p.add_argument("case", choices=sorted(CASES))
    p.add_argument("output", help="dump file to write")
    add_common(p, 10)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("match", help="replay a dump through a pattern")
    p.add_argument("pattern", help="pattern source file")
    p.add_argument("dump", help="POET dump file")
    p.add_argument("--clock-backend", choices=CLOCK_BACKENDS,
                   default="fidge",
                   help="transcode the dump's clocks before matching "
                        "(identical matches either way)")
    p.set_defaults(func=cmd_match)

    p = sub.add_parser("case", help="simulate + monitor a case study live")
    p.add_argument("case", choices=sorted(CASES))
    p.add_argument("--quiet", action="store_true", help="suppress per-match output")
    p.add_argument("--trace-out", metavar="FILE",
                   help="also record a Chrome trace-event timeline to FILE")
    p.add_argument("--serve-port", type=_nonnegative_int, default=None,
                   metavar="PORT",
                   help="also serve live /metrics on PORT while the case "
                        "runs (0 = auto-pick)")
    add_common(p, 10)
    p.set_defaults(func=cmd_case)

    p = sub.add_parser(
        "plan",
        help="explain the planner's evaluation order for a case pattern",
    )
    p.add_argument("case", choices=sorted(CASES))
    add_common(p, 10)
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser("bench", help="quartile table for a case study")
    p.add_argument("case", choices=sorted(CASES))
    p.add_argument("--repetitions", type=int, default=3)
    add_common(p, 10)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "stats", help="run a case with observability on and emit metrics"
    )
    p.add_argument("case", choices=sorted(CASES))
    p.add_argument("--format", choices=["table", "json", "prometheus"],
                   default="table", help="output format")
    p.add_argument("--output", help="write metrics to a file instead of stdout")
    p.add_argument("--trace-size", type=_positive_int, default=4096,
                   help="search-trace ring buffer capacity")
    p.add_argument("--show-trace", type=_nonnegative_int, default=0,
                   metavar="K",
                   help="also print the last K search-trace records")
    p.add_argument("--describe", action="store_true",
                   help="emit the metric reference table (markdown) "
                        "instead of the values")
    p.add_argument("--serve-port", type=_nonnegative_int, default=None,
                   metavar="PORT",
                   help="also serve live /metrics on PORT while the case "
                        "runs (0 = auto-pick)")
    add_common(p, 10)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "serve",
        help="run a case with the embedded scrape server and keep serving",
    )
    p.add_argument("case", choices=sorted(CASES))
    p.add_argument("--port", type=_nonnegative_int, default=0,
                   help="bind port (0 = auto-pick; printed after the run)")
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--linger", type=float, default=None, metavar="SECONDS",
                   help="keep serving this long after the run finishes "
                        "(default: until Ctrl-C)")
    add_common(p, 10)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "profile",
        help="sample the pipeline run and report hot code per stage",
    )
    p.add_argument("case", choices=sorted(CASES))
    p.add_argument("-o", "--output", metavar="FILE",
                   help="write collapsed stacks (flamegraph.pl / "
                        "speedscope input) to FILE")
    p.add_argument("--interval", type=float, default=0.005,
                   help="sampling interval in seconds")
    p.add_argument("--top", type=_positive_int, default=10,
                   help="hottest frames to print")
    add_common(p, 10)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "perf",
        help="perf-regression sentinel over benchmarks/results/BENCH_*.json",
    )
    perf_sub = p.add_subparsers(dest="perf_command", required=True)
    t = perf_sub.add_parser(
        "trend", help="flatten the BENCH files into BENCH_trend.json"
    )
    t.add_argument("--results", default="benchmarks/results",
                   help="directory holding the BENCH_*.json files")
    t.add_argument("--output", default=None,
                   help="trend file to write (default: "
                        "<results>/BENCH_trend.json)")
    t.set_defaults(func=cmd_perf_trend)
    d = perf_sub.add_parser(
        "diff",
        help="exit 1 when current indicators regressed past the "
             "threshold vs a baseline trend",
    )
    d.add_argument("--baseline", required=True,
                   help="baseline BENCH_trend.json")
    d.add_argument("--current", default=None,
                   help="current trend file (default: rebuilt live from "
                        "--results)")
    d.add_argument("--results", default="benchmarks/results",
                   help="directory holding the current BENCH_*.json files")
    d.add_argument("--threshold", type=float, default=0.15,
                   help="relative regression tolerance (0.15 = +15%%)")
    d.set_defaults(func=cmd_perf_diff)

    p = sub.add_parser(
        "trace",
        help="run a case with span tracing on and write a Perfetto timeline",
    )
    p.add_argument("case", choices=sorted(CASES))
    p.add_argument("-o", "--output", default="trace.json",
                   help="Chrome trace-event JSON file to write")
    p.add_argument("--trace-size", type=_positive_int, default=4096,
                   help="search-trace ring buffer capacity")
    add_common(p, 10)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "chaos",
        help="run the seeded fault matrix against the fault-free oracle",
    )
    p.add_argument("case", choices=sorted(CASES))
    p.add_argument("--seeds", type=_parse_seeds, default=list(range(10)),
                   metavar="SPEC",
                   help="fault seeds: '0..9', '1,4,7', or a single int")
    p.add_argument("--plans", nargs="*", metavar="KIND",
                   help="fault kinds to run (default: the full matrix)")
    p.add_argument("--stall-watermark", type=_positive_int, default=32,
                   help="arrivals without release before a stall is declared")
    p.add_argument("--json", metavar="FILE",
                   help="also write the full report as JSON")
    p.add_argument("--trace-out", metavar="FILE",
                   help="also record a Chrome trace-event timeline to FILE")
    p.add_argument("--shed", action="store_true",
                   help="also run every repairable plan through a "
                        "shedding pipeline (shed+<kind> cells)")
    p.add_argument("--overload", action="store_true",
                   help="also run the overload scenario: a latency burst "
                        "must engage shedding and then fully recover")
    add_common(p, 6)
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "shed",
        help="recall/precision sweep: utility-aware vs random load shedding",
    )
    p.add_argument("case", choices=sorted(CASE_STUDY_NAMES) + ["all"],
                   help="one case study, or 'all' four")
    p.add_argument("--seeds", type=_parse_seeds, default=list(range(10)),
                   metavar="SPEC",
                   help="workload seeds: '0..9', '1,4,7', or a single int")
    p.add_argument("--rates", type=_parse_rates,
                   default=list(DEFAULT_SHED_RATES), metavar="SPEC",
                   help="target drop rates, e.g. '0.1,0.2,0.3'")
    p.add_argument("--traces", type=int, default=4,
                   help="number of traces / processes")
    p.add_argument("--max-events", type=int, default=DEFAULT_SHED_EVENTS,
                   help="event budget per recorded stream (the oracle is "
                        "brute force; keep this small)")
    p.add_argument("--clock-backend", choices=CLOCK_BACKENDS,
                   default="fidge",
                   help="timestamp scheme of the recorded workload")
    p.add_argument("--json", metavar="FILE",
                   help="also write the full report as JSON "
                        "(the BENCH_overload.json payload)")
    p.set_defaults(func=cmd_shed)

    p = sub.add_parser(
        "pipeline",
        help="sharded single-pass equivalence check (the CI smoke job)",
    )
    p.add_argument("case", choices=sorted(CASES) + ["all"],
                   help="one case study ('all' = the four paper cases); "
                        "a v2 case adds its own pattern to the pass")
    p.add_argument("--seeds", type=_parse_seeds, default=list(range(10)),
                   metavar="SPEC",
                   help="workload seeds: '0..9', '1,4,7', or a single int")
    p.add_argument("--batch-size", type=_positive_int, default=256,
                   help="replay slice size of the sharded pass")
    p.add_argument("--json", metavar="FILE",
                   help="also write the full report as JSON")
    add_common(p, 4)
    p.set_defaults(func=cmd_pipeline)

    p = sub.add_parser(
        "cluster",
        help="multi-process deployment vs in-process equivalence check",
    )
    p.add_argument("case", choices=sorted(CASE_STUDY_NAMES) + ["all"],
                   help="one case study, or 'all' four")
    p.add_argument("--workers", type=_positive_int, default=2,
                   help="worker processes in the deployment")
    p.add_argument("--seeds", type=_parse_seeds, default=list(range(5)),
                   metavar="SPEC",
                   help="workload seeds: '0..9', '1,4,7', or a single int")
    p.add_argument("--batch-size", type=_positive_int, default=128,
                   help="events per EVENTS frame")
    p.add_argument("--kill", action="store_true",
                   help="SIGKILL a shard-owning worker mid-stream and "
                        "require counter-exact convergence after recovery")
    p.add_argument("--json", metavar="FILE",
                   help="also write the full report as JSON")
    add_common(p, 4)
    # Every cell runs the stream twice (in-process oracle + cluster);
    # default to a budget that keeps an 'all'-cases sweep snappy.
    p.set_defaults(func=cmd_cluster, max_events=4000)

    p = sub.add_parser("diagram", help="render a dump as a diagram")
    p.add_argument("dump", help="POET dump file")
    p.add_argument("--dot", action="store_true", help="emit GraphViz DOT")
    p.add_argument("--limit", type=int, default=60,
                   help="events to include (0 = all)")
    p.add_argument("--width", type=int, default=110, help="diagram width")
    p.set_defaults(func=cmd_diagram)

    p = sub.add_parser("offline", help="post-mortem full enumeration")
    p.add_argument("pattern", help="pattern source file")
    p.add_argument("dump", help="POET dump file")
    p.add_argument("--limit", type=int, default=20,
                   help="matches to print (0 = all)")
    p.set_defaults(func=cmd_offline)

    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
