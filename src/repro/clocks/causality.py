"""Causality predicates over vector timestamps.

These are the constant-time tests of paper Section III-A: given two
events and their vector timestamps, happens-before is decided with at
most two integer comparisons, and equality versus concurrency with two
more comparisons of trace and event numbers.

All functions take the timestamp together with the trace the event
occurred on; the event's index on its own trace is recoverable from the
clock itself (``V[trace]`` under the Fidge/Mattern convention used
throughout this library, see :mod:`repro.clocks.vector_clock`).

The predicates are backend-agnostic: they only *index* the timestamp,
so any :class:`Timestamp` — a full
:class:`~repro.clocks.vector_clock.VectorClock` or an O(1)-per-event
:class:`~repro.clocks.encoded.EncodedClock` — answers them with the
same two integer comparisons.
"""

from __future__ import annotations

import enum
from typing import Protocol


class Timestamp(Protocol):
    """What the causality predicates need from a timestamp: component
    lookup by trace and a width."""

    def __getitem__(self, trace: int) -> int: ...

    def __len__(self) -> int: ...


class Ordering(enum.Enum):
    """The four possible relations between two primitive events."""

    BEFORE = "before"  # first happens before second
    AFTER = "after"  # second happens before first
    EQUAL = "equal"  # same event
    CONCURRENT = "concurrent"  # causally unrelated

    def inverse(self) -> "Ordering":
        """The relation with the operand order swapped."""
        if self is Ordering.BEFORE:
            return Ordering.AFTER
        if self is Ordering.AFTER:
            return Ordering.BEFORE
        return self


def happens_before(va: Timestamp, trace_a: int, vb: Timestamp, trace_b: int) -> bool:
    """True when the event stamped ``va`` (on ``trace_a``) happens before
    the event stamped ``vb`` (on ``trace_b``).

    Under the receive-merges-then-ticks convention, for distinct events
    ``a -> b  <=>  Va[trace_a] <= Vb[trace_a]``; on the same trace the
    comparison is strict because each event has a distinct own-component
    value.  Two integer comparisons in the worst case.
    """
    if trace_a == trace_b:
        return va[trace_a] < vb[trace_a]
    return va[trace_a] <= vb[trace_a]


def concurrent(va: Timestamp, trace_a: int, vb: Timestamp, trace_b: int) -> bool:
    """True when neither event happens before the other and they differ."""
    return compare(va, trace_a, vb, trace_b) is Ordering.CONCURRENT


def compare(va: Timestamp, trace_a: int, vb: Timestamp, trace_b: int) -> Ordering:
    """Classify the relation between two stamped events.

    Equality is decided by trace number plus own-component (the event's
    index on its trace), matching the paper's "two more integer
    comparisons ... to distinguish between equality and concurrency".
    """
    if trace_a == trace_b and va[trace_a] == vb[trace_b]:
        return Ordering.EQUAL
    if happens_before(va, trace_a, vb, trace_b):
        return Ordering.BEFORE
    if happens_before(vb, trace_b, va, trace_a):
        return Ordering.AFTER
    return Ordering.CONCURRENT
