"""Encoded (bounded-storage) timestamps for cheap causality at scale.

Full Fidge/Mattern clocks answer every happens-before query this
library needs, but they cost O(num_traces) *per event*: each tick
copies, validates, and rehashes a width-``n`` tuple, and every stored
event retains its own private tuple.  For the OCEP matcher that cost
dominates once trace counts grow — the per-event work is clock
bookkeeping, not matching.

The encoded scheme here exploits the structural fact both *Efficient
Timestamps for Capturing Causality* (Vaidya & Kulkarni) and *An Optimal
Vector Clock Algorithm for Multithreaded Systems* (Zheng & Garg) build
on: between two receive events on a trace, the trace's knowledge of
**remote** traces is frozen — only its own component advances.  So a
timestamp decomposes into

* the event's own ``(trace, index)`` pair (two ints), and
* a reference into a shared, interned table of *knowledge rows* — the
  remote components as of the trace's most recent merge.

An :class:`EncodedClock` is the triple ``(trace, index, epoch)`` plus a
back-pointer to its computation's :class:`ClockFrame` (the row table).
The full vector is recovered as ``V[t] = index if t == trace else
row[epoch][t]``, so the constant-time predicates of
:mod:`repro.clocks.causality` (``happens_before`` / ``concurrent`` /
``compare``) work unchanged — the clock is a drop-in for
:class:`~repro.clocks.vector_clock.VectorClock` everywhere the matcher,
the event store, and the domain-pruning index index into it.

Cost profile (the Zheng/Garg optimum for this access pattern):

* ``tick`` — O(1): bump the index, keep the epoch.
* ``merge`` — O(n), but merges happen only at receive events, so the
  amortized per-event cost is O(1) + O(n · receive-fraction).
* dominance (``<=``) between same-trace neighbours — O(1): an
  unchanged epoch needs no comparison at all, and epoch transitions
  are certified in the frame when the row is produced (merge results
  dominate their parents by construction), so append-time validation
  is a set lookup with an O(n) fallback only for foreign rows.
* storage — O(1) per event; knowledge rows are deduplicated in the
  frame, so total row storage is proportional to communication, not to
  the event count.

:func:`encode_events` transcodes a recorded full-clock stream (any
valid linearization, e.g. a POET dump) into encoded form in O(1) per
non-receive event.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.events.event import Event, EventKind

#: The selectable timestamp backends (Pipeline / Kernel / Weaver).
CLOCK_BACKENDS: Tuple[str, ...] = ("fidge", "encoded")


def validate_backend(backend: str) -> str:
    """Return ``backend`` or raise ``ValueError`` for unknown names."""
    if backend not in CLOCK_BACKENDS:
        raise ValueError(
            f"unknown clock backend {backend!r}; known: {CLOCK_BACKENDS}"
        )
    return backend


class ClockFrame:
    """The shared knowledge-row table of one monitored computation.

    Every :class:`EncodedClock` of a computation points into one frame.
    Rows are interned: two events whose traces have identical remote
    knowledge share one physical tuple, so row storage grows with the
    number of *distinct* merge results (proportional to communication),
    not with the event count.

    Row convention: a row is a width-``num_traces`` tuple of remote
    components with the owner's own position normalized to 0 (the own
    component lives in the clock's ``index`` field and always overrides
    the row on reads).
    """

    __slots__ = ("num_traces", "_rows", "_ids", "_dominated")

    def __init__(self, num_traces: int):
        if num_traces <= 0:
            raise ValueError(f"need at least one trace, got {num_traces}")
        self.num_traces = num_traces
        zero = (0,) * num_traces
        self._rows: List[Tuple[int, ...]] = [zero]
        self._ids: Dict[Tuple[int, ...], int] = {zero: 0}
        # Certified-dominance pairs: (lo, hi) present means row(hi)
        # component-wise dominates row(lo).  Populated by the frame's
        # own row-producing operations (merge results dominate both
        # parents by construction; the transcoder certifies each
        # receive transition it has verified), so append-time
        # validation downstream is a set lookup instead of an
        # O(num_traces) scan.
        self._dominated: set = set()

    def intern(self, row: Tuple[int, ...]) -> int:
        """Return the epoch id of ``row``, adding it if unseen."""
        epoch = self._ids.get(row)
        if epoch is None:
            epoch = len(self._rows)
            self._rows.append(row)
            self._ids[row] = epoch
        return epoch

    def row(self, epoch: int) -> Tuple[int, ...]:
        """The knowledge row stored under ``epoch``."""
        return self._rows[epoch]

    def check_dominates(self, lo: int, hi: int) -> bool:
        """True when ``row(hi)`` component-wise dominates ``row(lo)``.

        O(1) for pairs the frame has already certified — every merge
        result against its parents, every transition the transcoder
        verified, and any pair this method has scanned before.  Unknown
        pairs fall back to the full O(num_traces) comparison (and are
        cached on success), so the answer is always exact: certification
        is an optimization, never a weakening of the check.
        """
        if lo == hi or (lo, hi) in self._dominated:
            return True
        rows = self._rows
        if all(a <= b for a, b in zip(rows[lo], rows[hi])):
            self._dominated.add((lo, hi))
            return True
        return False

    @property
    def num_rows(self) -> int:
        """Distinct knowledge rows interned so far (memory proxy)."""
        return len(self._rows)

    def zero(self, trace: int) -> "EncodedClock":
        """The initial (all-zero) clock owned by ``trace``."""
        if not 0 <= trace < self.num_traces:
            raise ValueError(
                f"trace must be in [0, {self.num_traces}), got {trace}"
            )
        return EncodedClock(self, trace, 0, 0)

    def encode(self, components: Sequence[int], trace: int) -> "EncodedClock":
        """Encode a full component vector owned by ``trace``.

        O(num_traces) — meant for boundaries (transcoding, checkpoint
        restore), not the per-event hot path.
        """
        comps = tuple(int(c) for c in components)
        if len(comps) != self.num_traces:
            raise ValueError(
                f"got {len(comps)} components for {self.num_traces} traces"
            )
        if not 0 <= trace < self.num_traces:
            raise ValueError(
                f"trace must be in [0, {self.num_traces}), got {trace}"
            )
        for c in comps:
            if c < 0:
                raise ValueError(
                    f"vector clock components must be >= 0, got {c}"
                )
        row = comps[:trace] + (0,) + comps[trace + 1:]
        return EncodedClock(self, trace, comps[trace], self.intern(row))

    def __repr__(self) -> str:
        return f"ClockFrame({self.num_traces} traces, {len(self._rows)} rows)"


class EncodedClock:
    """An O(1)-per-event timestamp equivalent to a full vector clock.

    The clock represents the vector ``V`` with ``V[trace] = index`` and
    ``V[t] = frame.row(epoch)[t]`` for every remote ``t``.  It supports
    the same protocol as :class:`~repro.clocks.vector_clock.VectorClock`
    (indexing, width, iteration, the partial-order comparisons,
    ``tick``/``merge``, value equality and hashing), with one
    deliberate restriction: ``tick`` only advances the owning trace's
    component — which is the only tick any causally valid substrate
    ever performs — so a wrong-trace (or negative) tick is an error
    instead of silent corruption.
    """

    __slots__ = ("frame", "trace", "index", "epoch", "_hash", "_comps")

    def __init__(self, frame: ClockFrame, trace: int, index: int, epoch: int):
        self.frame = frame
        self.trace = trace
        self.index = index
        self.epoch = epoch
        self._hash: Optional[int] = None
        self._comps: Optional[Tuple[int, ...]] = None

    # ------------------------------------------------------------------
    # Advancement
    # ------------------------------------------------------------------

    def tick(self, trace: int) -> "EncodedClock":
        """Advance the owning trace's component by one — O(1)."""
        if trace != self.trace:
            raise ValueError(
                f"encoded clock owned by trace {self.trace} cannot tick "
                f"trace {trace}"
            )
        return EncodedClock(self.frame, self.trace, self.index + 1, self.epoch)

    def merge(self, other) -> "EncodedClock":
        """Fold another clock's knowledge in (message join) — O(n).

        ``other`` may be any clock-like of the same width (an encoded
        clock of the same frame, or a full vector clock).  The result
        keeps this clock's owner and own component.
        """
        num_traces = self.frame.num_traces
        # Materialize the other side's components once (tuple slicing,
        # C speed) instead of calling its __getitem__ per trace.
        if isinstance(other, EncodedClock) and other.frame is self.frame:
            orow = self.frame.row(other.epoch)
            ot = other.trace
            oc = orow[:ot] + (other.index,) + orow[ot + 1:]
        else:
            oc = getattr(other, "components", None)
            oc = tuple(other) if oc is None else tuple(oc)
        if len(oc) != num_traces:
            raise ValueError(
                f"cannot merge clocks of widths {num_traces} and {len(oc)}"
            )
        own = self.trace
        if oc[own] > self.index:
            raise ValueError(
                f"merge would move trace {own} backwards in time: "
                f"own component {self.index} < merged {oc[own]}"
            )
        row = self.frame.row(self.epoch)
        merged = tuple(map(max, row, oc))
        merged = merged[:own] + (0,) + merged[own + 1:]
        if merged == row:
            return self
        epoch = self.frame.intern(merged)
        # A max-merge dominates its own parent row by construction;
        # certify the pair so append-time validation stays O(1).
        self.frame._dominated.add((self.epoch, epoch))
        return EncodedClock(self.frame, own, self.index, epoch)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def knowledge(self) -> Tuple[int, ...]:
        """The raw knowledge row (own position normalized to 0)."""
        return self.frame.row(self.epoch)

    @property
    def components(self) -> Tuple[int, ...]:
        """The full component vector (materialized once — O(n))."""
        comps = self._comps
        if comps is None:
            row = self.frame._rows[self.epoch]
            t = self.trace
            comps = self._comps = row[:t] + (self.index,) + row[t + 1:]
        return comps

    def __len__(self) -> int:
        return self.frame.num_traces

    def __getitem__(self, trace: int) -> int:
        # GP queries land here per domain restriction, so this matches
        # plain tuple indexing as closely as a method call can.
        if trace == self.trace:
            return self.index
        row = self.frame._rows[self.epoch]
        if trace < 0 or trace >= len(row):
            raise IndexError(
                f"trace {trace} out of range for clock width {len(row)}"
            )
        return row[trace]

    def __iter__(self) -> Iterator[int]:
        return iter(self.components)

    # ------------------------------------------------------------------
    # Causality comparisons
    # ------------------------------------------------------------------

    def __le__(self, other) -> bool:
        """Component-wise ``<=`` — the clock partial order.

        O(1) against a same-frame clock with the same epoch (only the
        own components can differ); O(n) otherwise.
        """
        if isinstance(other, EncodedClock) and other.frame is self.frame:
            if self.epoch == other.epoch:
                if self.trace == other.trace:
                    return self.index <= other.index
                row = self.frame.row(self.epoch)
                # Shared remote knowledge: only the own components can
                # exceed the other side's view.
                return (
                    self.index <= other[self.trace]
                    and row[other.trace] <= other.index
                )
        self._check_width(other)
        return all(a <= b for a, b in zip(self.components, other))

    def __lt__(self, other) -> bool:
        return self <= other and self.components != tuple(other)

    def __ge__(self, other) -> bool:
        self._check_width(other)
        return all(a >= b for a, b in zip(self.components, other))

    def __gt__(self, other) -> bool:
        return self >= other and self.components != tuple(other)

    def concurrent_with(self, other) -> bool:
        """True when neither clock dominates the other (incomparable)."""
        return not (self <= other) and not (self >= other)

    def _check_width(self, other) -> None:
        if len(other) != len(self):
            raise ValueError(
                f"cannot compare clocks of widths {len(self)} and {len(other)}"
            )

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EncodedClock):
            if other.frame is self.frame:
                if self.trace == other.trace:
                    return (
                        self.index == other.index
                        and self.epoch == other.epoch
                    )
            return self.components == other.components
        components = getattr(other, "components", None)
        if components is not None:
            return self.components == tuple(components)
        return NotImplemented

    def __hash__(self) -> int:
        # Matches hash(VectorClock) for equal components, so mixed
        # backends stay consistent as dict/set keys.
        h = self._hash
        if h is None:
            h = self._hash = hash(self.components)
        return h

    def __repr__(self) -> str:
        return f"EncodedClock({', '.join(map(str, self.components))})"


def make_clock_bank(backend: str, num_traces: int):
    """Initial per-trace clock bank for a substrate (Kernel / Weaver).

    Returns ``(clocks, frame)`` where ``frame`` is the shared
    :class:`ClockFrame` for the encoded backend and ``None`` for full
    Fidge/Mattern clocks.
    """
    from repro.clocks.vector_clock import VectorClock

    validate_backend(backend)
    if backend == "encoded":
        frame = ClockFrame(num_traces)
        return [frame.zero(t) for t in range(num_traces)], frame
    return [VectorClock.zero(num_traces) for _ in range(num_traces)], None


class StreamEncoder:
    """Stateful transcoder: full-clock events in, encoded-clock out.

    Holds the :class:`ClockFrame` plus per-trace epoch/length state
    *across* calls, so a stream arriving in slices (the network POET
    transport delivers batches) can be transcoded incrementally with
    the exact same result as one-shot :func:`encode_events` over the
    concatenation.
    """

    def __init__(self, num_traces: int, frame: Optional[ClockFrame] = None):
        if frame is None:
            frame = ClockFrame(num_traces)
        elif frame.num_traces != num_traces:
            raise ValueError(
                f"frame has {frame.num_traces} traces, stream has {num_traces}"
            )
        self.frame = frame
        self.num_traces = num_traces
        self._epochs = [0] * num_traces
        self._lengths = [0] * num_traces

    def extend(self, events: Iterable[Event]) -> List[Event]:
        """Transcode the next slice of the linearization."""
        frame = self.frame
        num_traces = self.num_traces
        epochs = self._epochs
        lengths = self._lengths
        encoded: List[Event] = []
        for event in events:
            trace = event.trace
            if not 0 <= trace < num_traces:
                raise ValueError(
                    f"event trace {trace} out of range for {num_traces} traces"
                )
            if event.index != lengths[trace] + 1:
                raise ValueError(
                    f"trace {trace}: event index {event.index} breaks the "
                    f"linearization (expected {lengths[trace] + 1})"
                )
            lengths[trace] = event.index
            if event.kind is EventKind.RECEIVE:
                comps = tuple(event.clock.components)
                row = comps[:trace] + (0,) + comps[trace + 1:]
                epoch = frame.intern(row)
                prev = epochs[trace]
                if prev != epoch:
                    # Verify the receive actually advanced this trace's
                    # knowledge and certify the transition, so the event
                    # store's append-time dominance check is a set lookup.
                    # A non-dominating (corrupt) transition is left
                    # uncertified — the store's full check still catches it.
                    if all(a <= b for a, b in zip(frame.row(prev), row)):
                        frame._dominated.add((prev, epoch))
                epochs[trace] = epoch
            clock = EncodedClock(frame, trace, event.index, epochs[trace])
            encoded.append(dataclasses.replace(event, clock=clock))
        return encoded


def encode_events(
    events: Iterable[Event],
    num_traces: int,
    frame: Optional[ClockFrame] = None,
) -> Tuple[List[Event], ClockFrame]:
    """Transcode a recorded stream's clocks into encoded form.

    ``events`` must be a valid linearization (per-trace indices
    contiguous from 1 — the POET delivery invariant).  Remote knowledge
    only changes at receive events, so the transcode is O(1) per
    non-receive event and O(num_traces) per receive: exactly the
    amortized profile of generating the encoded stamps natively.

    Everything except the ``clock`` field is preserved, so match output
    downstream is bit-identical to the full-clock stream.  Incremental
    callers (the cluster worker's streaming pipeline) keep a
    :class:`StreamEncoder` instead.
    """
    encoder = StreamEncoder(num_traces, frame)
    return encoder.extend(events), encoder.frame


__all__ = [
    "CLOCK_BACKENDS",
    "ClockFrame",
    "EncodedClock",
    "StreamEncoder",
    "encode_events",
    "make_clock_bank",
    "validate_backend",
]
