"""Fidge/Mattern vector clocks.

A :class:`VectorClock` is an immutable, fixed-width vector of event
counters, one entry per trace.  The protocol implemented by the
simulation substrate (``repro.simulation``) and POET plugins is the
classic one:

* every trace ``i`` keeps a current clock, initially all zeros;
* on every event of trace ``i`` the clock is advanced: ``V[i] += 1``;
* every message carries the sender's clock at the send event;
* a receive event first merges (component-wise max) the carried clock
  into the local clock, then advances its own component.

With this convention, for an event ``a`` on trace ``i`` the component
``Va[i]`` is the 1-based index of ``a`` on its own trace, and for any
remote trace ``t``, ``Va[t]`` is the index of the *greatest
predecessor* of ``a`` on ``t`` — the most recent event on ``t`` that
happens before ``a`` (0 if none).  The OCEP matcher's domain pruning
(paper, Figures 4 and 5) relies on exactly this property.

Instances are immutable and hashable so they can be freely shared
between the event store, pattern-tree histories, and partial matches
without defensive copying.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple


class VectorClock:
    """An immutable vector timestamp over a fixed number of traces.

    Parameters
    ----------
    components:
        Iterable of non-negative integers, one per trace.

    Examples
    --------
    >>> a = VectorClock([1, 0, 0])
    >>> b = a.tick(1)
    >>> b
    VectorClock(1, 1, 0)
    >>> a < b
    False
    >>> a.merge(b).tick(2)
    VectorClock(1, 1, 1)
    """

    __slots__ = ("_components", "_hash")

    def __init__(self, components: Iterable[int]):
        comps = tuple(int(c) for c in components)
        for c in comps:
            if c < 0:
                raise ValueError(f"vector clock components must be >= 0, got {c}")
        self._components: Tuple[int, ...] = comps
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def _trusted(cls, comps: Tuple[int, ...]) -> "VectorClock":
        """Internal constructor for components already known valid.

        :meth:`tick` and :meth:`merge` derive their output from clocks
        that passed full validation, so re-running the per-component
        checks (and the eager rehash the public constructor used to do)
        on every event is pure overhead — on the hot path it showed up
        as O(width) redundant work per tick.  Callers must pass a tuple
        of non-negative ints.
        """
        clock = cls.__new__(cls)
        clock._components = comps
        clock._hash = None
        return clock

    @classmethod
    def zero(cls, width: int) -> "VectorClock":
        """Return the all-zero clock over ``width`` traces."""
        if width <= 0:
            raise ValueError(f"clock width must be positive, got {width}")
        return cls((0,) * width)

    def tick(self, trace: int) -> "VectorClock":
        """Return a new clock with the ``trace`` component advanced by one.

        Raises
        ------
        ValueError
            If ``trace`` is not a valid 0-based trace number for this
            clock's width.  (A negative index would silently wrap to
            the last trace under tuple indexing, corrupting causality
            for that trace.)
        """
        if not 0 <= trace < len(self._components):
            raise ValueError(
                f"trace must be in [0, {len(self._components)}), got {trace}"
            )
        comps = list(self._components)
        comps[trace] += 1
        return VectorClock._trusted(tuple(comps))

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Return the component-wise maximum of two clocks (message join)."""
        if len(other) != len(self):
            raise ValueError(
                f"cannot merge clocks of widths {len(self)} and {len(other)}"
            )
        return VectorClock._trusted(
            tuple(map(max, self._components, other.components))
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def components(self) -> Tuple[int, ...]:
        """The raw component tuple."""
        return self._components

    @property
    def knowledge(self) -> Tuple[int, ...]:
        """Remote-knowledge view of the clock — for a full vector clock
        this is just the component tuple (readers of the knowledge row
        never look at the owner's own position, so no normalization is
        needed; the encoded backend returns its interned row here
        without materializing a vector)."""
        return self._components

    def __len__(self) -> int:
        return len(self._components)

    def __getitem__(self, trace: int) -> int:
        return self._components[trace]

    def __iter__(self) -> Iterator[int]:
        return iter(self._components)

    # ------------------------------------------------------------------
    # Causality comparisons
    # ------------------------------------------------------------------

    def __le__(self, other: "VectorClock") -> bool:
        """Component-wise ``<=`` — the clock partial order.

        Works against any clock-like exposing ``components`` (e.g. an
        :class:`~repro.clocks.encoded.EncodedClock`), so mixed-backend
        comparisons agree with the full-vector semantics.
        """
        self._check_width(other)
        return all(a <= b for a, b in zip(self._components, other.components))

    def __lt__(self, other: "VectorClock") -> bool:
        """Strictly less in the clock partial order (``<=`` and not equal)."""
        return self <= other and self._components != tuple(other.components)

    def __ge__(self, other: "VectorClock") -> bool:
        self._check_width(other)
        return all(a >= b for a, b in zip(self._components, other.components))

    def __gt__(self, other: "VectorClock") -> bool:
        return self >= other and self._components != tuple(other.components)

    def concurrent_with(self, other: "VectorClock") -> bool:
        """True when neither clock dominates the other (incomparable)."""
        return not (self <= other) and not (self >= other)

    def _check_width(self, other: "VectorClock") -> None:
        if len(other) != len(self):
            raise ValueError(
                f"cannot compare clocks of widths {len(self)} and {len(other)}"
            )

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, VectorClock):
            return self._components == other._components
        components = getattr(other, "components", None)
        if components is not None:
            return self._components == tuple(components)
        return NotImplemented

    def __hash__(self) -> int:
        # Computed on first use: most clocks on the hot path are never
        # hashed (events hash by identity), so hashing eagerly in every
        # tick/merge was wasted O(width) work.
        h = self._hash
        if h is None:
            h = self._hash = hash(self._components)
        return h

    def __repr__(self) -> str:
        return f"VectorClock({', '.join(map(str, self._components))})"
