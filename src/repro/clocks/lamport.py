"""Lamport scalar clocks.

Scalar logical clocks [22] give a total order consistent with
happens-before but, unlike vector clocks, cannot *decide* causality:
``L(a) < L(b)`` is necessary but not sufficient for ``a -> b``.  The
simulation kernel stamps every event with a Lamport clock alongside its
vector clock; the POET linearizer (``repro.poet.linearize``) uses the
scalar clock as an efficient, causality-consistent sort key, which is
exactly the role a Lamport clock is fit for.
"""

from __future__ import annotations


class LamportClock:
    """A mutable Lamport scalar clock for one process.

    Examples
    --------
    >>> c = LamportClock()
    >>> c.tick()
    1
    >>> c.tick()
    2
    >>> c.receive(10)
    11
    >>> c.time
    11
    """

    __slots__ = ("_time",)

    def __init__(self, start: int = 0):
        if start < 0:
            raise ValueError(f"clock must start at >= 0, got {start}")
        self._time = start

    @property
    def time(self) -> int:
        """The current clock value (time of the most recent event)."""
        return self._time

    def tick(self) -> int:
        """Advance for a local or send event; return the event's time."""
        self._time += 1
        return self._time

    def receive(self, message_time: int) -> int:
        """Advance for a receive event carrying ``message_time``.

        The clock jumps past both its own time and the sender's, so the
        receive is ordered after the send.
        """
        self._time = max(self._time, message_time) + 1
        return self._time

    def __repr__(self) -> str:
        return f"LamportClock(time={self._time})"
