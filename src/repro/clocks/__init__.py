"""Logical clocks for causality tracking in distributed computations.

This package provides the timestamping substrate the paper builds on
(Section III): Fidge/Mattern vector clocks [14, 28] that *accurately*
encode potential causality between events, plus Lamport scalar clocks
[22] for baselines that only need a consistent total order.

The central fact (paper, Section III-A): given events ``a`` on trace ``i``
and ``b`` on trace ``j`` with timestamps ``Va`` and ``Vb``,

    a -> b  <=>  Va[i] <= Vb[i]  (and a != b)

so happens-before can be decided with at most two integer comparisons,
and equality/concurrency with two more (trace id and event index).
"""

from repro.clocks.vector_clock import VectorClock
from repro.clocks.lamport import LamportClock
from repro.clocks.causality import (
    Ordering,
    Timestamp,
    compare,
    concurrent,
    happens_before,
)
from repro.clocks.encoded import (
    CLOCK_BACKENDS,
    ClockFrame,
    EncodedClock,
    encode_events,
    make_clock_bank,
    validate_backend,
)

__all__ = [
    "CLOCK_BACKENDS",
    "ClockFrame",
    "EncodedClock",
    "LamportClock",
    "Ordering",
    "Timestamp",
    "VectorClock",
    "compare",
    "concurrent",
    "encode_events",
    "happens_before",
    "make_clock_bank",
    "validate_backend",
]
