"""Discrete-event simulation kernel.

The kernel runs a set of generator-based processes
(:mod:`repro.simulation.process`) over a buffered message-passing
network (:mod:`repro.simulation.network`), maintains Fidge/Mattern
vector clocks and Lamport clocks for every trace, and emits one
:class:`repro.events.Event` per instrumented action to its sinks in
simulation-time order — a valid linearization of the happens-before
partial order by construction.

Trace layout: process ``i`` owns trace ``i``; semaphore ``j`` owns
trace ``num_processes + j``.  Modelling semaphores as separate traces
reproduces the μC++ POET plugin behaviour the atomicity case study
depends on (paper, Section V-C3): a grant is a message from the
semaphore trace to the acquiring process and a release is a message
back, so critical sections protected by the semaphore are causally
ordered through it, while a bypassed (buggy) acquire leaves them
concurrent.
"""

from __future__ import annotations

import dataclasses
import enum
import heapq
import itertools
import random
from collections import deque
from typing import Any, Callable, Deque, Dict, Generator, List, Optional, Sequence, Tuple

from repro.clocks.lamport import LamportClock
from repro.clocks.encoded import make_clock_bank, validate_backend
from repro.clocks.vector_clock import VectorClock
from repro.events.event import Event, EventId, EventKind
from repro.obs.spans import NULL_TRACER, SpanTracer
from repro.simulation.errors import DeadlockError, SimulationError
from repro.simulation.network import Message, Network
from repro.simulation.process import (
    AcquireAction,
    Action,
    EmitAction,
    Proc,
    ReceiveAction,
    ReleaseAction,
    SendAction,
    SleepAction,
)

#: Wildcard source for receives (mirrors ``MPI_ANY_SOURCE``).
ANY_SOURCE = -1

ProcessBody = Callable[[Proc], Generator[Action, Any, None]]
EventSink = Callable[[Event], None]


class _ProcState(enum.Enum):
    READY = "ready"
    BLOCKED_SEND = "blocked-send"
    BLOCKED_RECV = "blocked-recv"
    BLOCKED_SEM = "blocked-sem"
    DONE = "done"


@dataclasses.dataclass
class _Semaphore:
    count: int
    waiters: Deque[int] = dataclasses.field(default_factory=deque)


@dataclasses.dataclass
class SimulationResult:
    """Outcome of a kernel run.

    Attributes
    ----------
    num_events:
        Total events emitted.
    deadlocked:
        True when the run ended because every live process was blocked
        with nothing in flight.
    blocked:
        Process ids that were blocked at the end (the deadlock cycle
        participants when ``deadlocked``).
    truncated:
        True when the run stopped at the ``max_events`` budget.
    sim_time:
        Final simulation clock value.
    """

    num_events: int
    deadlocked: bool
    blocked: Tuple[int, ...]
    truncated: bool
    sim_time: float


class Kernel:
    """Seeded discrete-event simulator for message-passing programs.

    Parameters
    ----------
    num_processes:
        Number of sequential processes (one trace each).
    num_semaphores:
        Number of semaphores, each a separate trace.
    seed:
        RNG seed; all nondeterminism (delays, jitter) derives from it,
        so a run is fully reproducible.
    buffer_capacity:
        Per-destination network buffer capacity (``None`` = unbounded,
        ``0`` = rendezvous); see :class:`repro.simulation.network.Network`.
    semaphore_counts:
        Initial count per semaphore (default all 1, i.e. mutexes).
    mean_delay:
        Mean network latency; actual delays jitter uniformly in
        ``[0.5, 1.5] * mean_delay``.
    action_delay:
        Local time consumed by each process action (with jitter).
    trace_blocking:
        Emit a ``SendBlock`` event when a send enters the blocked
        state (the instrumented activity deadlock patterns match on).
    clock_backend:
        Timestamp scheme for emitted events: ``"fidge"`` (full
        Fidge/Mattern vectors) or ``"encoded"`` (O(1)-per-event
        encoded clocks, see :mod:`repro.clocks.encoded`).  Both answer
        the causality predicates identically; only the cost profile
        differs.
    """

    def __init__(
        self,
        num_processes: int,
        num_semaphores: int = 0,
        seed: int = 0,
        buffer_capacity: Optional[int] = None,
        semaphore_counts: Optional[Sequence[int]] = None,
        mean_delay: float = 1.0,
        action_delay: float = 0.1,
        trace_blocking: bool = True,
        clock_backend: str = "fidge",
    ):
        if num_processes <= 0:
            raise ValueError(f"need at least one process, got {num_processes}")
        if num_semaphores < 0:
            raise ValueError(f"num_semaphores must be >= 0, got {num_semaphores}")
        if semaphore_counts is not None and len(semaphore_counts) != num_semaphores:
            raise ValueError(
                f"got {len(semaphore_counts)} counts for {num_semaphores} semaphores"
            )

        self.num_processes = num_processes
        self.num_semaphores = num_semaphores
        self.num_traces = num_processes + num_semaphores
        self._rng = random.Random(seed)
        self._mean_delay = mean_delay
        self._action_delay = action_delay
        self._trace_blocking = trace_blocking

        self._network = Network(num_processes, capacity=buffer_capacity)
        self._semaphores = [
            _Semaphore(count=(semaphore_counts[i] if semaphore_counts else 1))
            for i in range(num_semaphores)
        ]

        self.clock_backend = validate_backend(clock_backend)
        self._clocks, self.clock_frame = make_clock_bank(
            clock_backend, self.num_traces
        )
        self._lamports: List[LamportClock] = [
            LamportClock() for _ in range(self.num_traces)
        ]

        self._bodies: List[Optional[Generator[Action, Any, None]]] = [
            None
        ] * num_processes
        self._states: List[_ProcState] = [_ProcState.DONE] * num_processes
        self._recv_filters: Dict[int, ReceiveAction] = {}
        self._pending_sends: List[Deque[Tuple[int, Message]]] = [
            deque() for _ in range(num_processes)
        ]

        self._last_arrival: Dict[Tuple[int, int], float] = {}
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._num_events = 0
        self._sinks: List[EventSink] = []
        self._transmit_fault: Optional[Callable[[Message], float]] = None
        self._tracer: SpanTracer = NULL_TRACER

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def add_sink(self, sink: EventSink) -> None:
        """Register a callback invoked for every emitted event, in
        linearization order."""
        self._sinks.append(sink)

    def set_transmit_fault(self, fault: Optional[Callable[[Message], float]]) -> None:
        """Install a network fault hook (``None`` removes it).

        The hook is called once per transmitted message and returns
        extra delivery latency (>= 0 simulated time units) added to the
        jittered network delay — e.g.
        :class:`repro.resilience.faults.TransmitFaults`.  Non-overtaking
        per-channel delivery is still enforced afterwards, so a faulted
        run remains a valid computation (a different interleaving, not
        a corrupted one)."""
        self._transmit_fault = fault

    def set_tracer(self, tracer: Optional[SpanTracer]) -> None:
        """Attach a span tracer (``None`` detaches).  Every emitted
        event becomes a slice on its trace's simulated-time track, and
        every message (point-to-point or semaphore grant/release)
        becomes a flow event from its send slice to its receive slice
        — the happens-before edges of the computation."""
        self._tracer = tracer if tracer is not None else NULL_TRACER
        if self._tracer.enabled:
            for trace, name in enumerate(self.trace_names()):
                self._tracer.sim_track(trace, name)
            self._tracer.bind_sim_clock(lambda: self._now)

    @property
    def now(self) -> float:
        """Current simulated time (advances monotonically while
        :meth:`run` drains the schedule)."""
        return self._now

    def spawn(self, pid: int, body: ProcessBody) -> None:
        """Install the program for process ``pid``."""
        if not 0 <= pid < self.num_processes:
            raise ValueError(f"process id {pid} out of range")
        if self._bodies[pid] is not None:
            raise SimulationError(f"process {pid} already has a body")
        proc_rng = random.Random(self._rng.randrange(2**62))
        self._bodies[pid] = body(Proc(pid, proc_rng))
        self._states[pid] = _ProcState.READY
        self._schedule(self._jitter(self._action_delay), self._resume, pid, None)

    def trace_names(self) -> List[str]:
        """Human-readable names for all traces, processes then semaphores."""
        names = [f"P{i}" for i in range(self.num_processes)]
        names += [f"sem{j}" for j in range(self.num_semaphores)]
        return names

    def semaphore_trace(self, sem: int) -> int:
        """Trace id of semaphore ``sem``."""
        if not 0 <= sem < self.num_semaphores:
            raise ValueError(f"semaphore {sem} out of range")
        return self.num_processes + sem

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def run(
        self,
        max_events: Optional[int] = None,
        max_time: Optional[float] = None,
        stop_on_deadlock: bool = True,
    ) -> SimulationResult:
        """Run until completion, deadlock, or a budget is exhausted.

        With ``stop_on_deadlock=False`` a deadlock raises
        :class:`DeadlockError` instead of returning normally.
        """
        truncated = False
        while self._heap:
            if max_events is not None and self._num_events >= max_events:
                truncated = True
                break
            when, _, thunk = heapq.heappop(self._heap)
            if max_time is not None and when > max_time:
                truncated = True
                break
            self._now = when
            thunk()

        blocked = tuple(
            pid
            for pid, state in enumerate(self._states)
            if state
            in (_ProcState.BLOCKED_SEND, _ProcState.BLOCKED_RECV, _ProcState.BLOCKED_SEM)
        )
        deadlocked = not truncated and bool(blocked) and not self._heap
        if deadlocked and not stop_on_deadlock:
            raise DeadlockError(blocked)
        return SimulationResult(
            num_events=self._num_events,
            deadlocked=deadlocked,
            blocked=blocked,
            truncated=truncated,
            sim_time=self._now,
        )

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------

    def _schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        heapq.heappush(
            self._heap,
            (self._now + delay, next(self._seq), lambda: fn(*args)),
        )

    def _jitter(self, mean: float) -> float:
        return mean * self._rng.uniform(0.5, 1.5)

    # ------------------------------------------------------------------
    # Event emission
    # ------------------------------------------------------------------

    def _emit(
        self,
        trace: int,
        etype: str,
        text: str,
        kind: EventKind,
        partner: Optional[EventId] = None,
        merge_clock: Optional[VectorClock] = None,
        merge_lamport: Optional[int] = None,
    ) -> Event:
        clock = self._clocks[trace]
        if merge_clock is not None:
            clock = clock.merge(merge_clock)
        clock = clock.tick(trace)
        self._clocks[trace] = clock

        if merge_lamport is not None:
            lamport = self._lamports[trace].receive(merge_lamport)
        else:
            lamport = self._lamports[trace].tick()

        event = Event(
            trace=trace,
            index=clock[trace],
            etype=etype,
            text=text,
            clock=clock,
            kind=kind,
            partner=partner,
            lamport=lamport,
        )
        self._num_events += 1
        if self._tracer.enabled:
            ts = self._tracer.sim_event(
                trace,
                etype,
                self._now,
                args={"id": repr(event.event_id), "kind": kind.value,
                      "text": text},
            )
            if kind is EventKind.SEND:
                self._tracer.flow_start(event.event_id, trace, self._now, ts=ts)
            elif kind is EventKind.RECEIVE and partner is not None:
                self._tracer.flow_finish(partner, trace, self._now, ts=ts)
        for sink in self._sinks:
            sink(event)
        return event

    # ------------------------------------------------------------------
    # Process stepping
    # ------------------------------------------------------------------

    def _resume(self, pid: int, value: Any) -> None:
        body = self._bodies[pid]
        if body is None or self._states[pid] is _ProcState.DONE:
            return
        self._states[pid] = _ProcState.READY
        try:
            action = body.send(value)
        except StopIteration:
            self._states[pid] = _ProcState.DONE
            return
        self._handle(pid, action)

    def _resume_later(self, pid: int, value: Any) -> None:
        self._schedule(self._jitter(self._action_delay), self._resume, pid, value)

    def _handle(self, pid: int, action: Action) -> None:
        if isinstance(action, EmitAction):
            event = self._emit(pid, action.etype, action.text, EventKind.UNARY)
            self._resume_later(pid, event)
        elif isinstance(action, SleepAction):
            self._schedule(action.duration, self._resume, pid, None)
        elif isinstance(action, SendAction):
            self._handle_send(pid, action)
        elif isinstance(action, ReceiveAction):
            self._handle_receive(pid, action)
        elif isinstance(action, AcquireAction):
            self._handle_acquire(pid, action)
        elif isinstance(action, ReleaseAction):
            self._handle_release(pid, action)
        else:
            raise SimulationError(f"process {pid} yielded unknown action {action!r}")

    # ------------------------------------------------------------------
    # Point-to-point messaging
    # ------------------------------------------------------------------

    def _handle_send(self, pid: int, action: SendAction) -> None:
        if not 0 <= action.dst < self.num_processes:
            raise SimulationError(f"send to unknown process {action.dst}")
        if action.dst == pid:
            raise SimulationError(f"process {pid} cannot send to itself")

        event = self._emit(pid, action.etype, action.text, EventKind.SEND)
        message = Message(
            src=pid,
            dst=action.dst,
            payload=action.payload,
            send_event=event.event_id,
            send_clock=event.clock,
            send_lamport=event.lamport,
            tag=action.tag,
        )

        receiver_waiting = self._states[action.dst] is _ProcState.BLOCKED_RECV and (
            self._matches_filter(self._recv_filters[action.dst], message)
        )
        if self._network.has_room(action.dst) or receiver_waiting:
            self._transmit(message)
            self._resume_later(pid, event)
        else:
            # The send cannot be buffered: the caller blocks (the
            # MPI_Send subtlety).  The tracer records the transition
            # into the blocked state as its own instrumented event —
            # this is what deadlock-cycle patterns match on.
            if self._trace_blocking:
                self._emit(pid, "SendBlock", action.text, EventKind.LOCAL)
            self._pending_sends[action.dst].append((pid, message))
            self._states[pid] = _ProcState.BLOCKED_SEND

    def _transmit(self, message: Message) -> None:
        self._network.reserve(message.dst)
        # Non-overtaking channels (MPI guarantee): arrivals on one
        # (src, dst) pair are monotone in transmission order even
        # though each delivery is independently jittered.
        arrival = self._now + self._jitter(self._mean_delay)
        if self._transmit_fault is not None:
            extra = self._transmit_fault(message)
            if extra < 0:
                raise SimulationError(
                    f"transmit fault returned negative delay {extra}"
                )
            arrival += extra
        channel = (message.src, message.dst)
        floor = self._last_arrival.get(channel, 0.0)
        arrival = max(arrival, floor + 1e-9)
        self._last_arrival[channel] = arrival
        self._schedule(arrival - self._now, self._arrive, message)

    def _arrive(self, message: Message) -> None:
        self._network.arrive(message)
        dst = message.dst
        if self._states[dst] is _ProcState.BLOCKED_RECV:
            fltr = self._recv_filters[dst]
            matched = self._network.match(dst, fltr.source, fltr.tag)
            if matched is not None:
                self._consume(dst, fltr, matched)

    def _matches_filter(self, fltr: ReceiveAction, message: Message) -> bool:
        if fltr.source >= 0 and message.src != fltr.source:
            return False
        if fltr.tag is not None and message.tag != fltr.tag:
            return False
        return True

    def _handle_receive(self, pid: int, action: ReceiveAction) -> None:
        buffered = self._network.match(pid, action.source, action.tag)
        if buffered is not None:
            self._consume(pid, action, buffered)
            return

        # No buffered message: a sender blocked on a full (or
        # zero-capacity rendezvous) channel may be carrying one we can
        # accept directly.
        pending = self._pending_sends[pid]
        for entry in pending:
            sender, message = entry
            if self._matches_filter(action, message):
                pending.remove(entry)
                self._transmit(message)
                self._resume_later(sender, None)
                break

        self._recv_filters[pid] = action
        self._states[pid] = _ProcState.BLOCKED_RECV

    def _consume(self, pid: int, action: ReceiveAction, message: Message) -> None:
        self._network.consume(pid, message)
        self._recv_filters.pop(pid, None)
        # The receive is satisfied now; the resume is merely scheduled.
        # Clearing the blocked state here keeps later arrivals (before
        # the resume fires) from matching against a stale filter.
        self._states[pid] = _ProcState.READY
        self._emit(
            pid,
            action.etype,
            action.text,
            EventKind.RECEIVE,
            partner=message.send_event,
            merge_clock=message.send_clock,
            merge_lamport=message.send_lamport,
        )
        self._resume_later(pid, message)
        self._drain_pending(pid)

    def _drain_pending(self, dst: int) -> None:
        """Consumption freed buffer space; let blocked senders proceed."""
        pending = self._pending_sends[dst]
        while pending and self._network.has_room(dst):
            sender, message = pending.popleft()
            self._transmit(message)
            self._resume_later(sender, None)

    # ------------------------------------------------------------------
    # Semaphores (separate traces)
    # ------------------------------------------------------------------

    def _handle_acquire(self, pid: int, action: AcquireAction) -> None:
        if action.bypass:
            # Injected bug: the acquire "succeeds" without touching the
            # semaphore, so no causal edge is created.
            event = self._emit(pid, "Acquire", "bypass", EventKind.LOCAL)
            self._resume_later(pid, event)
            return

        sem = self._sem(action.sem)
        if sem.count > 0:
            sem.count -= 1
            self._grant(action.sem, pid)
        else:
            sem.waiters.append(pid)
            self._states[pid] = _ProcState.BLOCKED_SEM

    def _grant(self, sem_id: int, pid: int) -> None:
        trace = self.semaphore_trace(sem_id)
        grant = self._emit(trace, "Grant", str(pid), EventKind.SEND)
        event = self._emit(
            pid,
            "Acquire",
            f"sem{sem_id}",
            EventKind.RECEIVE,
            partner=grant.event_id,
            merge_clock=grant.clock,
            merge_lamport=grant.lamport,
        )
        self._resume_later(pid, event)

    def _handle_release(self, pid: int, action: ReleaseAction) -> None:
        sem_id = action.sem
        sem = self._sem(sem_id)
        trace = self.semaphore_trace(sem_id)

        release = self._emit(pid, "Release", f"sem{sem_id}", EventKind.SEND)
        self._emit(
            trace,
            "Released",
            str(pid),
            EventKind.RECEIVE,
            partner=release.event_id,
            merge_clock=release.clock,
            merge_lamport=release.lamport,
        )
        sem.count += 1
        if sem.waiters:
            sem.count -= 1
            waiter = sem.waiters.popleft()
            self._grant(sem_id, waiter)
        self._resume_later(pid, release)

    def _sem(self, sem_id: int) -> _Semaphore:
        if not 0 <= sem_id < self.num_semaphores:
            raise SimulationError(f"unknown semaphore {sem_id}")
        return self._semaphores[sem_id]
