"""μC++-flavoured veneer: tasks and semaphores-as-traces.

μC++ [11] extends C++ with concurrency constructs; its POET plugin
models semaphores as separate traces (paper, Section V-C3).  The
:class:`Semaphore` helper wraps the kernel's semaphore actions so a
workload reads like the μC++ program it stands in for::

    sem = Semaphore(0)

    def task(p: Proc):
        yield from sem.acquire(p)            # P()
        yield p.emit("CS", text="critical")  # protected method body
        yield from sem.release(p)            # V()

A *bypassed* acquire (``sem.acquire(p, bypass=True)``) models the
injected bug in which "the semaphore will not be acquired properly
with 1% probability": the task proceeds without creating any causal
edge through the semaphore trace, so its critical-section events can
be concurrent with another task's — the atomicity violation OCEP
detects.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.simulation.process import Action, Proc


class Semaphore:
    """Handle for one kernel semaphore (identified by its index).

    The kernel must be built with ``num_semaphores`` covering every
    index used, and the semaphore's trace id is
    ``kernel.semaphore_trace(index)``.
    """

    __slots__ = ("index",)

    def __init__(self, index: int):
        if index < 0:
            raise ValueError(f"semaphore index must be >= 0, got {index}")
        self.index = index

    def acquire(
        self, proc: Proc, bypass: bool = False
    ) -> Generator[Action, Any, None]:
        """P operation; with ``bypass`` the buggy no-op variant."""
        yield proc.acquire(self.index, bypass=bypass)

    def release(self, proc: Proc) -> Generator[Action, Any, None]:
        """V operation."""
        yield proc.release(self.index)
