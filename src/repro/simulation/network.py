"""Message-passing network with bounded buffering.

The network models the property the deadlock case study depends on
(paper, Section V-C1): ``MPI_Send``, although a blocking operation,
"only gets blocked when the network cannot buffer the message
completely".  Each destination process owns a mailbox with a bounded
*buffer capacity*; a send completes immediately while the mailbox (plus
in-flight messages towards it) has room, and blocks the sender
otherwise.  With generous capacity a send-cycle deadlock stays latent;
with tight capacity it manifests — exactly the rarely-visible bug the
paper injects.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.events.event import EventId


@dataclasses.dataclass
class Message:
    """A message in flight or buffered at the destination.

    Attributes
    ----------
    src, dst:
        Sender and destination process ids.
    payload:
        Arbitrary application data.
    send_event:
        Identity of the send event (becomes the receive's partner).
    send_clock:
        The sender's vector clock at the send event; merged into the
        receiver's clock at consumption.
    send_lamport:
        The sender's Lamport time at the send event.
    tag:
        Optional application tag, usable for selective receives.
    """

    src: int
    dst: int
    payload: Any
    send_event: EventId
    send_clock: Any
    send_lamport: int
    tag: Optional[str] = None


class Network:
    """Per-destination mailboxes with bounded capacity.

    Parameters
    ----------
    num_processes:
        Number of communicating processes.
    capacity:
        Buffer capacity per destination mailbox.  ``capacity=0`` gives
        rendezvous semantics (a send blocks until the destination posts
        a matching receive); larger values emulate eager buffering.
        ``None`` means unbounded.
    """

    def __init__(self, num_processes: int, capacity: Optional[int] = None):
        if num_processes <= 0:
            raise ValueError(f"need at least one process, got {num_processes}")
        if capacity is not None and capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._mailboxes: List[Deque[Message]] = [
            deque() for _ in range(num_processes)
        ]
        self._in_flight: Dict[int, int] = {i: 0 for i in range(num_processes)}

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------

    def has_room(self, dst: int) -> bool:
        """True when a new message towards ``dst`` can be buffered."""
        if self.capacity is None:
            return True
        occupied = len(self._mailboxes[dst]) + self._in_flight[dst]
        return occupied < self.capacity

    def reserve(self, dst: int) -> None:
        """Account for a message that has left the sender but not yet
        arrived (in flight)."""
        self._in_flight[dst] += 1

    def arrive(self, message: Message) -> None:
        """Move an in-flight message into the destination mailbox."""
        if self._in_flight[message.dst] <= 0:
            raise RuntimeError(
                f"arrival at process {message.dst} without a reservation"
            )
        self._in_flight[message.dst] -= 1
        self._mailboxes[message.dst].append(message)

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------

    def match(self, dst: int, source: int, tag: Optional[str] = None) -> Optional[Message]:
        """Find (without removing) the first buffered message for ``dst``
        matching the ``source`` filter (-1 for any) and optional tag."""
        for message in self._mailboxes[dst]:
            if source >= 0 and message.src != source:
                continue
            if tag is not None and message.tag != tag:
                continue
            return message
        return None

    def consume(self, dst: int, message: Message) -> None:
        """Remove a previously matched message from the mailbox."""
        try:
            self._mailboxes[dst].remove(message)
        except ValueError:
            raise RuntimeError(
                f"message {message.send_event} not buffered at process {dst}"
            ) from None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def buffered(self, dst: int) -> int:
        """Number of messages currently buffered for ``dst``."""
        return len(self._mailboxes[dst])

    def in_flight(self, dst: int) -> int:
        """Number of messages travelling towards ``dst``."""
        return self._in_flight[dst]

    def idle(self) -> bool:
        """True when nothing is buffered or in flight anywhere."""
        return all(v == 0 for v in self._in_flight.values()) and all(
            not box for box in self._mailboxes
        )
