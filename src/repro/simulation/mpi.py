"""MPI-flavoured veneer over the simulation kernel.

The case studies of the paper are MPI programs (random walk, message
race).  This module provides just enough MPI surface for workloads to
read like their MPI originals: ``MPI_Send`` / ``MPI_Recv`` with
``MPI_ANY_SOURCE``, blocking semantics governed by network buffering.

Usage::

    def rank_body(mpi: MPIContext):
        yield mpi.send(dst=(mpi.rank + 1) % mpi.size, payload="walker")
        msg = yield mpi.recv(source=ANY_SOURCE)

    kernel = mpi_run(size=8, body=rank_body, buffer_capacity=0, seed=1)
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.simulation.kernel import ANY_SOURCE, Kernel
from repro.simulation.process import (
    Action,
    EmitAction,
    Proc,
    ReceiveAction,
    SendAction,
    SleepAction,
)

MPI_ANY_SOURCE = ANY_SOURCE


class MPIContext:
    """Per-rank handle mirroring a tiny slice of the MPI API."""

    __slots__ = ("_proc", "size")

    def __init__(self, proc: Proc, size: int):
        self._proc = proc
        self.size = size

    @property
    def rank(self) -> int:
        """This process's rank (its process id)."""
        return self._proc.pid

    @property
    def rng(self) -> Any:
        """Per-rank seeded RNG."""
        return self._proc.rng

    def send(
        self,
        dst: int,
        payload: Any = None,
        text: str = "",
        tag: Optional[str] = None,
    ) -> SendAction:
        """Blocking standard-mode send (blocks only when the network
        cannot buffer the message — the MPI_Send subtlety)."""
        return self._proc.send(dst, etype="Send", text=text, payload=payload, tag=tag)

    def recv(
        self,
        source: int = MPI_ANY_SOURCE,
        text: str = "",
        tag: Optional[str] = None,
    ) -> ReceiveAction:
        """Blocking receive; ``source=MPI_ANY_SOURCE`` takes any sender."""
        return self._proc.receive(source, etype="Receive", text=text, tag=tag)

    def emit(self, etype: str, text: str = "") -> EmitAction:
        """Record an instrumented unary event."""
        return self._proc.emit(etype, text)

    def sleep(self, duration: float) -> SleepAction:
        """Model local computation time."""
        return self._proc.sleep(duration)


RankBody = Callable[[MPIContext], Generator[Action, Any, None]]


def mpi_run(
    size: int,
    body: RankBody,
    seed: int = 0,
    buffer_capacity: Optional[int] = None,
    mean_delay: float = 1.0,
    action_delay: float = 0.1,
) -> Kernel:
    """Build a kernel with ``size`` ranks all running ``body``.

    Returns the kernel *before* running so callers can attach event
    sinks; call :meth:`Kernel.run` to execute.
    """
    kernel = Kernel(
        num_processes=size,
        seed=seed,
        buffer_capacity=buffer_capacity,
        mean_delay=mean_delay,
        action_delay=action_delay,
    )
    for rank in range(size):
        kernel.spawn(rank, lambda proc, _size=size: body(MPIContext(proc, _size)))
    return kernel
