"""Process API for simulated programs.

A simulated process is written as a Python generator: the body receives
a :class:`Proc` handle, builds *actions* with its methods, and yields
them to the kernel.  Blocking actions (receive, send on a full channel,
semaphore acquire) suspend the generator until the kernel can satisfy
them; the result of the action (e.g. the received message) is the value
of the ``yield`` expression::

    def worker(p: Proc):
        yield p.emit("Start")
        yield p.send(dst=1, etype="Send", text="to-1")
        msg = yield p.receive()          # blocks until a message arrives
        yield p.emit("Got", text=str(msg.payload))

This mirrors how the paper's instrumented targets behave: every
communication or instrumented activity of interest produces exactly one
traced event.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional


class Action:
    """Base class for actions a process can yield to the kernel."""

    __slots__ = ()


@dataclasses.dataclass
class EmitAction(Action):
    """Record a unary instrumented event on the process trace."""

    etype: str
    text: str = ""


@dataclasses.dataclass
class SendAction(Action):
    """Blocking point-to-point send (blocks only when unbufferable)."""

    dst: int
    etype: str = "Send"
    text: str = ""
    payload: Any = None
    tag: Optional[str] = None


@dataclasses.dataclass
class ReceiveAction(Action):
    """Blocking receive; ``source=-1`` accepts any sender."""

    source: int = -1
    etype: str = "Receive"
    text: str = ""
    tag: Optional[str] = None


@dataclasses.dataclass
class AcquireAction(Action):
    """Semaphore P operation.

    With ``bypass=True`` the operation *pretends* to succeed without
    actually interacting with the semaphore — the injected μC++ bug of
    the atomicity case study ("the semaphore will not be acquired
    properly with 1% probability").
    """

    sem: int
    bypass: bool = False


@dataclasses.dataclass
class ReleaseAction(Action):
    """Semaphore V operation (a bypassed acquire must not release)."""

    sem: int


@dataclasses.dataclass
class SleepAction(Action):
    """Advance local simulation time without emitting an event."""

    duration: float


class Proc:
    """Handle given to a process body for building actions.

    The handle also exposes the process id and a process-local seeded
    RNG so workload code never reaches for global randomness.
    """

    __slots__ = ("pid", "rng")

    def __init__(self, pid: int, rng: Any):
        self.pid = pid
        self.rng = rng

    def emit(self, etype: str, text: str = "") -> EmitAction:
        """Record a unary instrumented event of class ``etype``."""
        return EmitAction(etype=etype, text=text)

    def send(
        self,
        dst: int,
        etype: str = "Send",
        text: str = "",
        payload: Any = None,
        tag: Optional[str] = None,
    ) -> SendAction:
        """Blocking send to process ``dst``."""
        return SendAction(dst=dst, etype=etype, text=text, payload=payload, tag=tag)

    def receive(
        self,
        source: int = -1,
        etype: str = "Receive",
        text: str = "",
        tag: Optional[str] = None,
    ) -> ReceiveAction:
        """Blocking receive; default source -1 means ANY_SOURCE."""
        return ReceiveAction(source=source, etype=etype, text=text, tag=tag)

    def acquire(self, sem: int, bypass: bool = False) -> AcquireAction:
        """Semaphore P; ``bypass=True`` injects the broken-acquire bug."""
        return AcquireAction(sem=sem, bypass=bypass)

    def release(self, sem: int) -> ReleaseAction:
        """Semaphore V."""
        return ReleaseAction(sem=sem)

    def sleep(self, duration: float) -> SleepAction:
        """Let simulated time pass."""
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        return SleepAction(duration=duration)
