"""Deterministic discrete-event simulation of message-passing systems.

The paper evaluates OCEP on event data collected by POET from
instrumented MPI and μC++ applications.  Neither substrate is
available here, so this package provides the closest synthetic
equivalent: a seeded discrete-event simulator whose *sequential
processes* communicate only by message passing, with

* blocking point-to-point sends whose blocking behaviour depends on
  network buffering (mirroring the MPI_Send subtlety the deadlock case
  study relies on),
* receives with source selection including a wildcard ``ANY_SOURCE``,
* semaphores modelled as separate traces (the μC++ POET plugin
  behaviour the atomicity case study relies on), and
* Fidge/Mattern vector clocks plus Lamport clocks maintained by the
  kernel and stamped on every emitted event.

Events are emitted in simulation-time order, which is a valid
linearization of the happens-before partial order by construction
(message consumption always occurs at a later simulation time than the
send).  The POET substrate (:mod:`repro.poet`) consumes this stream.
"""

from repro.simulation.errors import DeadlockError, SimulationError
from repro.simulation.kernel import ANY_SOURCE, Kernel, SimulationResult
from repro.simulation.network import Message, Network
from repro.simulation.process import Proc
from repro.simulation.mpi import MPIContext, mpi_run
from repro.simulation.ucpp import Semaphore

__all__ = [
    "ANY_SOURCE",
    "Kernel",
    "SimulationResult",
    "SimulationError",
    "DeadlockError",
    "Message",
    "Network",
    "Proc",
    "MPIContext",
    "mpi_run",
    "Semaphore",
]
