"""Simulation error types."""

from __future__ import annotations

from typing import Sequence


class SimulationError(Exception):
    """Base class for simulation failures (misuse of the kernel API)."""


class DeadlockError(SimulationError):
    """Raised (optionally) when the simulated system deadlocks.

    A deadlock is declared when every live process is blocked on a
    send or receive, no message delivery is in flight, and no timer is
    pending — i.e. the simulation can make no further step.  Workloads
    that *expect* deadlock (the random-walk case study) run the kernel
    with ``stop_on_deadlock=True`` and treat this as a normal outcome
    via :class:`repro.simulation.kernel.SimulationResult`.
    """

    def __init__(self, blocked: Sequence[int]):
        self.blocked = tuple(blocked)
        super().__init__(
            f"simulated deadlock: processes {list(self.blocked)} are all blocked"
        )
